// Package waif implements the WAIF FeedEvents proxy the paper deploys
// subscriptions at ([2], §3): a push-based wrapper around pull-based Web
// resources. The proxy polls each feed once on behalf of all its
// subscribers, detects new items by GUID, and publishes them as events
// into the pub-sub substrate — making Reef's recommendations backwards
// compatible with the pull-based Web.
package waif

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"reef/internal/eventalg"
	"reef/internal/feed"
	"reef/internal/metrics"
	"reef/internal/pubsub"
	"reef/internal/websim"
)

// EventAttrType is the value of the "type" attribute on feed-item events.
const EventAttrType = "feed-item"

// ErrProxyClosed is returned by operations on a closed proxy.
var ErrProxyClosed = errors.New("waif: proxy closed")

// Publisher abstracts the pub-sub injection point; *pubsub.Node satisfies
// it, and tests use a capture function. The context bounds blocking
// deliveries downstream.
type Publisher interface {
	Publish(ctx context.Context, ev pubsub.Event) error
}

// PublisherFunc adapts a function to Publisher.
type PublisherFunc func(ctx context.Context, ev pubsub.Event) error

// Publish implements Publisher.
func (f PublisherFunc) Publish(ctx context.Context, ev pubsub.Event) error { return f(ctx, ev) }

// ItemFilter returns the subscription filter matching items of one feed —
// the topic-based subscription Reef places for a recommended feed.
func ItemFilter(feedURL string) eventalg.Filter {
	return eventalg.NewFilter(
		eventalg.C("type", eventalg.OpEq, eventalg.String(EventAttrType)),
		eventalg.C("feed", eventalg.OpEq, eventalg.String(feedURL)),
	)
}

// ItemEvent converts one feed item to a pub-sub event.
func ItemEvent(feedURL string, it feed.Item) pubsub.Event {
	return pubsub.Event{
		Attrs: eventalg.Tuple{
			"type":  eventalg.String(EventAttrType),
			"feed":  eventalg.String(feedURL),
			"title": eventalg.String(it.Title),
			"link":  eventalg.String(it.Link),
		},
		Payload:   []byte(it.Description),
		Source:    feedURL,
		Published: it.Published,
	}
}

// proxyFeed is the proxy's per-feed state.
type proxyFeed struct {
	url      string
	refcount int
	seen     map[string]struct{}
	nextPoll time.Time
	// primed marks that the first poll happened; the first poll seeds
	// `seen` without publishing, so subscribers receive only items that
	// appear after they subscribed.
	primed bool
}

// Config tunes the proxy.
type Config struct {
	// Fetcher retrieves feed documents.
	Fetcher websim.Fetcher
	// Publish receives the events for new items.
	Publish Publisher
	// PollEvery is the per-feed poll interval (default 30 minutes).
	PollEvery time.Duration
}

// Proxy is the FeedEvents service. It is safe for concurrent use; polling
// is driven by the owner calling PollDue with the current (possibly
// simulated) time.
type Proxy struct {
	cfg Config
	reg *metrics.Registry

	mu     sync.Mutex
	closed bool
	feeds  map[string]*proxyFeed
}

// New builds a proxy.
func New(cfg Config) *Proxy {
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 30 * time.Minute
	}
	return &Proxy{
		cfg:   cfg,
		reg:   metrics.NewRegistry(),
		feeds: make(map[string]*proxyFeed),
	}
}

// Metrics exposes polls, poll_errors, items_published, and the
// subscriber-poll savings counter polls_saved (polls that per-user pulling
// would have issued but shared polling did not).
func (p *Proxy) Metrics() *metrics.Registry { return p.reg }

// Subscribe registers interest in a feed (refcounted). The first
// subscription schedules the feed for immediate priming.
func (p *Proxy) Subscribe(feedURL string, now time.Time) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrProxyClosed
	}
	pf, ok := p.feeds[feedURL]
	if !ok {
		pf = &proxyFeed{
			url:      feedURL,
			seen:     make(map[string]struct{}),
			nextPoll: now,
		}
		p.feeds[feedURL] = pf
	}
	pf.refcount++
	p.reg.Gauge("feeds").Set(int64(len(p.feeds)))
	return nil
}

// Unsubscribe drops one registration; the feed stops being polled when its
// refcount reaches zero.
func (p *Proxy) Unsubscribe(feedURL string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pf, ok := p.feeds[feedURL]
	if !ok {
		return
	}
	pf.refcount--
	if pf.refcount <= 0 {
		delete(p.feeds, feedURL)
	}
	p.reg.Gauge("feeds").Set(int64(len(p.feeds)))
}

// NumFeeds reports distinct feeds under management.
func (p *Proxy) NumFeeds() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.feeds)
}

// Subscribers reports the refcount for a feed.
func (p *Proxy) Subscribers(feedURL string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pf, ok := p.feeds[feedURL]; ok {
		return pf.refcount
	}
	return 0
}

// PollDue polls every feed whose next poll time has arrived, publishing
// events for unseen items. It returns the number of feeds polled and
// items published. Fetch or parse failures count in poll_errors and defer
// the feed to the next interval (transient failures must not kill the
// poller).
func (p *Proxy) PollDue(ctx context.Context, now time.Time) (polled, published int) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return 0, 0
	}
	var due []*proxyFeed
	for _, pf := range p.feeds {
		if !pf.nextPoll.After(now) {
			due = append(due, pf)
		}
	}
	// Record the shared-polling savings: per-user pulling would poll once
	// per subscriber.
	for _, pf := range due {
		if pf.refcount > 1 {
			p.reg.Counter("polls_saved").Add(int64(pf.refcount - 1))
		}
	}
	p.mu.Unlock()

	for _, pf := range due {
		if ctx.Err() != nil {
			return polled, published
		}
		polled++
		n, err := p.pollOne(ctx, pf, now)
		if err != nil {
			p.reg.Counter("poll_errors").Inc()
		}
		published += n
	}
	return polled, published
}

// pollOne fetches one feed and publishes its new items.
func (p *Proxy) pollOne(ctx context.Context, pf *proxyFeed, now time.Time) (int, error) {
	p.reg.Counter("polls").Inc()
	res, err := p.cfg.Fetcher.Fetch(pf.url)
	if err != nil {
		p.deferPoll(pf, now)
		return 0, fmt.Errorf("waif: polling %s: %w", pf.url, err)
	}
	f, err := feed.Parse(pf.url, res.Body)
	if err != nil {
		p.deferPoll(pf, now)
		return 0, err
	}

	p.mu.Lock()
	fresh := f.NewItems(pf.seen)
	for _, it := range fresh {
		pf.seen[it.GUID] = struct{}{}
	}
	prime := !pf.primed
	pf.primed = true
	pf.nextPoll = now.Add(p.cfg.PollEvery)
	p.mu.Unlock()

	if prime {
		// First contact: seed state silently so a new subscriber is not
		// flooded with the feed's entire backlog.
		return 0, nil
	}
	published := 0
	for _, it := range fresh {
		if err := p.cfg.Publish.Publish(ctx, ItemEvent(pf.url, it)); err != nil {
			return published, fmt.Errorf("waif: publishing item from %s: %w", pf.url, err)
		}
		published++
		p.reg.Counter("items_published").Inc()
	}
	return published, nil
}

func (p *Proxy) deferPoll(pf *proxyFeed, now time.Time) {
	p.mu.Lock()
	pf.nextPoll = now.Add(p.cfg.PollEvery)
	p.mu.Unlock()
}

// Close stops the proxy; further Subscribe calls fail and PollDue becomes
// a no-op.
func (p *Proxy) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
}
