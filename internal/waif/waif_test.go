package waif

import (
	"context"
	"sync"
	"testing"
	"time"

	"reef/internal/feed"
	"reef/internal/pubsub"
	"reef/internal/topics"
	"reef/internal/websim"
)

var simStart = time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)

type capturePublisher struct {
	mu     sync.Mutex
	events []pubsub.Event
}

func (c *capturePublisher) Publish(_ context.Context, ev pubsub.Event) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev)
	return nil
}

func (c *capturePublisher) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// feedWeb builds a web and returns it with the URL of one live feed.
func feedWeb(t *testing.T, seed int64) (*websim.Web, string) {
	t.Helper()
	model := topics.NewModel(seed, 4, 20, 20)
	cfg := websim.DefaultConfig(seed, simStart)
	cfg.NumContentServers = 40
	cfg.NumAdServers = 5
	cfg.NumSpamServers = 0
	cfg.NumMultimediaServers = 0
	cfg.FeedProb = 1.0
	cfg.FeedUpdateMin = time.Hour
	cfg.FeedUpdateMax = 2 * time.Hour
	w := websim.Generate(cfg, model)
	for _, s := range w.Servers(websim.KindContent) {
		for path := range s.Feeds {
			return w, s.URL(path)
		}
	}
	t.Fatal("no feeds generated")
	return nil, ""
}

func TestProxyPublishesNewItems(t *testing.T) {
	w, feedURL := feedWeb(t, 1)
	sink := &capturePublisher{}
	p := New(Config{Fetcher: w, Publish: sink, PollEvery: 30 * time.Minute})

	if err := p.Subscribe(feedURL, simStart); err != nil {
		t.Fatal(err)
	}
	// Priming poll: no events even if the feed has backlog.
	p.PollDue(context.Background(), simStart)
	if sink.len() != 0 {
		t.Fatalf("priming poll published %d events", sink.len())
	}

	// Let the feed publish some items, then poll after the interval.
	later := simStart.Add(12 * time.Hour)
	w.AdvanceTo(later)
	polled, published := p.PollDue(context.Background(), later)
	if polled != 1 {
		t.Fatalf("polled = %d, want 1", polled)
	}
	if published == 0 || sink.len() != published {
		t.Fatalf("published = %d, sink = %d", published, sink.len())
	}
	ev := sink.events[0]
	if ev.Attrs["type"].Str() != EventAttrType {
		t.Errorf("event type attr = %v", ev.Attrs["type"])
	}
	if ev.Attrs["feed"].Str() != feedURL {
		t.Errorf("event feed attr = %v", ev.Attrs["feed"])
	}
	if !ItemFilter(feedURL).Match(ev.Attrs) {
		t.Error("ItemFilter does not match the proxy's own events")
	}
}

func TestProxyDedupsAcrossPolls(t *testing.T) {
	w, feedURL := feedWeb(t, 2)
	sink := &capturePublisher{}
	p := New(Config{Fetcher: w, Publish: sink, PollEvery: time.Hour})
	p.Subscribe(feedURL, simStart)
	p.PollDue(context.Background(), simStart)

	t1 := simStart.Add(6 * time.Hour)
	w.AdvanceTo(t1)
	_, pub1 := p.PollDue(context.Background(), t1)

	// Poll again without feed progress: nothing new.
	t2 := t1.Add(time.Hour)
	_, pub2 := p.PollDue(context.Background(), t2)
	if pub2 != 0 {
		t.Errorf("re-poll published %d duplicate items", pub2)
	}
	if sink.len() != pub1 {
		t.Errorf("sink = %d, want %d", sink.len(), pub1)
	}
}

func TestProxyRespectsPollInterval(t *testing.T) {
	w, feedURL := feedWeb(t, 3)
	p := New(Config{Fetcher: w, Publish: &capturePublisher{}, PollEvery: time.Hour})
	p.Subscribe(feedURL, simStart)
	p.PollDue(context.Background(), simStart)
	// 10 minutes later: not due.
	if polled, _ := p.PollDue(context.Background(), simStart.Add(10*time.Minute)); polled != 0 {
		t.Errorf("polled %d before interval", polled)
	}
	if polled, _ := p.PollDue(context.Background(), simStart.Add(61*time.Minute)); polled != 1 {
		t.Errorf("polled %d after interval, want 1", polled)
	}
}

func TestProxySharedPolling(t *testing.T) {
	w, feedURL := feedWeb(t, 4)
	p := New(Config{Fetcher: w, Publish: &capturePublisher{}, PollEvery: time.Hour})
	for i := 0; i < 5; i++ {
		p.Subscribe(feedURL, simStart)
	}
	if p.NumFeeds() != 1 {
		t.Fatalf("NumFeeds = %d", p.NumFeeds())
	}
	if p.Subscribers(feedURL) != 5 {
		t.Fatalf("Subscribers = %d", p.Subscribers(feedURL))
	}
	p.PollDue(context.Background(), simStart)
	snap := p.Metrics().Snapshot()
	if snap["polls"] != 1 {
		t.Errorf("polls = %v, want 1 (shared)", snap["polls"])
	}
	if snap["polls_saved"] != 4 {
		t.Errorf("polls_saved = %v, want 4", snap["polls_saved"])
	}
}

func TestProxyUnsubscribeRefcount(t *testing.T) {
	w, feedURL := feedWeb(t, 5)
	p := New(Config{Fetcher: w, Publish: &capturePublisher{}})
	p.Subscribe(feedURL, simStart)
	p.Subscribe(feedURL, simStart)
	p.Unsubscribe(feedURL)
	if p.NumFeeds() != 1 {
		t.Error("feed dropped while subscribers remain")
	}
	p.Unsubscribe(feedURL)
	if p.NumFeeds() != 0 {
		t.Error("feed retained after last unsubscribe")
	}
	p.Unsubscribe(feedURL) // no-op
	if polled, _ := p.PollDue(context.Background(), simStart.Add(24*time.Hour)); polled != 0 {
		t.Error("unsubscribed feed polled")
	}
}

func TestProxyFetchFailureDefers(t *testing.T) {
	w, feedURL := feedWeb(t, 6)
	host, _, _ := websim.SplitURL(feedURL)
	sink := &capturePublisher{}
	p := New(Config{Fetcher: w, Publish: sink, PollEvery: time.Hour})
	p.Subscribe(feedURL, simStart)

	w.SetDown(host, true)
	polled, published := p.PollDue(context.Background(), simStart)
	if polled != 1 || published != 0 {
		t.Fatalf("PollDue = (%d, %d)", polled, published)
	}
	if got := p.Metrics().Snapshot()["poll_errors"]; got != 1 {
		t.Errorf("poll_errors = %v", got)
	}
	// Host recovers; the feed polls again after the interval.
	w.SetDown(host, false)
	w.AdvanceTo(simStart.Add(10 * time.Hour))
	if polled, _ := p.PollDue(context.Background(), simStart.Add(time.Hour)); polled != 1 {
		t.Errorf("recovered feed not re-polled: %d", polled)
	}
}

func TestProxyClose(t *testing.T) {
	w, feedURL := feedWeb(t, 7)
	p := New(Config{Fetcher: w, Publish: &capturePublisher{}})
	p.Subscribe(feedURL, simStart)
	p.Close()
	if err := p.Subscribe("http://x.test/f.xml", simStart); err != ErrProxyClosed {
		t.Errorf("Subscribe after Close = %v", err)
	}
	if polled, _ := p.PollDue(context.Background(), simStart.Add(24*time.Hour)); polled != 0 {
		t.Error("closed proxy polled")
	}
}

func TestProxyIntoRealOverlay(t *testing.T) {
	w, feedURL := feedWeb(t, 8)
	ov := pubsub.NewOverlay()
	defer ov.Close()
	node, err := ov.AddNode("edge")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := node.Subscribe(ItemFilter(feedURL))
	if err != nil {
		t.Fatal(err)
	}
	p := New(Config{Fetcher: w, Publish: node, PollEvery: time.Hour})
	p.Subscribe(feedURL, simStart)
	p.PollDue(context.Background(), simStart) // prime
	w.AdvanceTo(simStart.Add(12 * time.Hour))
	_, published := p.PollDue(context.Background(), simStart.Add(2*time.Hour))
	if published == 0 {
		t.Fatal("nothing published")
	}
	if err := ov.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(sub.Events()) != published {
		t.Errorf("delivered %d, want %d", len(sub.Events()), published)
	}
}

func TestItemFilterDoesNotMatchOtherFeeds(t *testing.T) {
	f := ItemFilter("http://a.test/f.xml")
	other := ItemEvent("http://b.test/f.xml", feed.Item{
		GUID: "g", Title: "t", Link: "l", Published: simStart,
	})
	if f.Match(other.Attrs) {
		t.Error("filter matched another feed's items")
	}
}
