package websim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"reef/internal/feed"
	"reef/internal/topics"
)

// Config parameterizes synthetic web generation. The defaults (see
// DefaultConfig) are calibrated so that the E1 experiment reproduces the
// aggregate statistics of the paper's §3.2 crawl.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Start is the initial feed time.
	Start time.Time

	// NumContentServers is the pool of ordinary topical servers.
	NumContentServers int
	// NumAdServers is the pool of advertisement hosts.
	NumAdServers int
	// NumSpamServers is the pool of keyword-stuffed spam hosts.
	NumSpamServers int
	// NumMultimediaServers is the pool of media CDNs.
	NumMultimediaServers int

	// PagesPerServerMin/Max bound pages per content server.
	PagesPerServerMin, PagesPerServerMax int
	// WordsPerPageMin/Max bound body length in words.
	WordsPerPageMin, WordsPerPageMax int
	// BackgroundProb is the chance a body word is background vocabulary.
	BackgroundProb float64

	// FeedProb is the probability a content server hosts at least one feed.
	FeedProb float64
	// MaxFeedsPerServer bounds feeds on feed-hosting servers.
	MaxFeedsPerServer int
	// FeedUpdateMin/Max bound each feed's publication interval.
	FeedUpdateMin, FeedUpdateMax time.Duration

	// AdsPerPageMax bounds embedded ad references per content page.
	AdsPerPageMax int
	// LinksPerPageMax bounds hyperlinks per page.
	LinksPerPageMax int
}

// DefaultConfig returns the E1-calibrated configuration over the given
// model. The counts mirror §3.2: ~900 content servers that users actually
// reach, ~1700 ad hosts, and 424 distinct feeds comes from FeedProb and
// MaxFeedsPerServer (measured, not forced).
func DefaultConfig(seed int64, start time.Time) Config {
	return Config{
		Seed:                 seed,
		Start:                start,
		NumContentServers:    1060,
		NumAdServers:         950,
		NumSpamServers:       40,
		NumMultimediaServers: 30,
		PagesPerServerMin:    3,
		PagesPerServerMax:    12,
		WordsPerPageMin:      80,
		WordsPerPageMax:      260,
		BackgroundProb:       0.35,
		FeedProb:             0.36,
		MaxFeedsPerServer:    2,
		FeedUpdateMin:        2 * time.Hour,
		FeedUpdateMax:        72 * time.Hour,
		AdsPerPageMax:        5,
		LinksPerPageMax:      6,
	}
}

// Generate builds a deterministic synthetic web from the config and model.
func Generate(cfg Config, model *topics.Model) *Web {
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := NewWeb(model, cfg.Start)

	// Ad servers first so content pages can reference them.
	adHosts := make([]string, 0, cfg.NumAdServers)
	for i := 0; i < cfg.NumAdServers; i++ {
		host := fmt.Sprintf("ad%04d.adnet.test", i)
		adHosts = append(adHosts, host)
		w.AddServer(&Server{
			Host:  host,
			Kind:  KindAd,
			Pages: map[string]*Page{},
			Feeds: map[string]*FeedSpec{},
		})
	}

	for i := 0; i < cfg.NumMultimediaServers; i++ {
		host := fmt.Sprintf("media%03d.cdn.test", i)
		s := &Server{Host: host, Kind: KindMultimedia, Pages: map[string]*Page{}, Feeds: map[string]*FeedSpec{}}
		for p := 0; p < 4; p++ {
			path := fmt.Sprintf("/v/%d.mp4", p)
			s.Pages[path] = &Page{Path: path, Title: fmt.Sprintf("clip %d", p)}
		}
		w.AddServer(s)
	}

	for i := 0; i < cfg.NumSpamServers; i++ {
		host := fmt.Sprintf("spam%03d.junk.test", i)
		s := &Server{Host: host, Kind: KindSpam, Pages: map[string]*Page{}, Feeds: map[string]*FeedSpec{}}
		mx := topics.UniformMixture(rng.Intn(model.NumTopics()))
		for p := 0; p < 3; p++ {
			path := fmt.Sprintf("/offer/%d.html", p)
			s.Pages[path] = &Page{
				Path:    path,
				Title:   fmt.Sprintf("AMAZING OFFER %d", p),
				Text:    model.SampleText(rng, mx, 30, 0.1),
				Mixture: mx,
			}
		}
		w.AddServer(s)
	}

	// Content servers with topical pages, cross-links, ads and feeds.
	servers := make([]*Server, 0, cfg.NumContentServers)
	for i := 0; i < cfg.NumContentServers; i++ {
		host := fmt.Sprintf("c%04d.web.test", i)
		var mx topics.Mixture
		if rng.Float64() < 0.7 {
			mx = topics.UniformMixture(rng.Intn(model.NumTopics()))
		} else {
			mx = topics.UniformMixture(rng.Intn(model.NumTopics()), rng.Intn(model.NumTopics()))
		}
		s := &Server{Host: host, Kind: KindContent, Mixture: mx,
			Pages: map[string]*Page{}, Feeds: map[string]*FeedSpec{}}

		// Feeds.
		var feedPaths []string
		if rng.Float64() < cfg.FeedProb {
			nf := 1 + rng.Intn(cfg.MaxFeedsPerServer)
			for f := 0; f < nf; f++ {
				path := fmt.Sprintf("/feeds/%d.xml", f)
				interval := cfg.FeedUpdateMin +
					time.Duration(rng.Int63n(int64(cfg.FeedUpdateMax-cfg.FeedUpdateMin)+1))
				format := feed.FormatRSS2
				switch rng.Intn(4) {
				case 0:
					format = feed.FormatAtom
				case 1:
					if rng.Intn(2) == 0 {
						format = feed.FormatRDF
					}
				}
				s.Feeds[path] = &FeedSpec{
					Path: path,
					Feed: &feed.Feed{
						URL:         s.URL(path),
						Title:       fmt.Sprintf("%s feed %d", host, f),
						SiteLink:    s.URL("/"),
						Description: "synthetic feed",
						Format:      format,
					},
					UpdateEvery: interval,
					NextUpdate:  cfg.Start.Add(time.Duration(rng.Int63n(int64(interval)))),
					Mixture:     mx,
				}
				feedPaths = append(feedPaths, path)
			}
		}

		nPages := cfg.PagesPerServerMin
		if cfg.PagesPerServerMax > cfg.PagesPerServerMin {
			nPages += rng.Intn(cfg.PagesPerServerMax - cfg.PagesPerServerMin + 1)
		}
		for p := 0; p < nPages; p++ {
			path := fmt.Sprintf("/p/%d.html", p)
			nWords := cfg.WordsPerPageMin
			if cfg.WordsPerPageMax > cfg.WordsPerPageMin {
				nWords += rng.Intn(cfg.WordsPerPageMax - cfg.WordsPerPageMin + 1)
			}
			page := &Page{
				Path:    path,
				Title:   fmt.Sprintf("%s page %d", host, p),
				Text:    model.SampleText(rng, mx, nWords, cfg.BackgroundProb),
				Mixture: mx,
			}
			// Every page advertises the server's feeds (sites put the
			// autodiscovery link in their shared header).
			page.FeedPaths = feedPaths
			// Ads.
			if cfg.AdsPerPageMax > 0 && len(adHosts) > 0 {
				nAds := rng.Intn(cfg.AdsPerPageMax + 1)
				for a := 0; a < nAds; a++ {
					// Most ad slots go to the big networks (Zipf head);
					// a quarter go to one-off minor trackers drawn
					// uniformly, giving the long tail of servers seen
					// only once that real traffic shows.
					var ad string
					if rng.Float64() < 0.25 {
						ad = adHosts[rng.Intn(len(adHosts))]
					} else {
						ad = adHosts[zipfIndex(rng, len(adHosts))]
					}
					page.AdRefs = append(page.AdRefs,
						fmt.Sprintf("http://%s/banner/%d", ad, rng.Intn(1000)))
				}
			}
			s.Pages[path] = page
		}
		servers = append(servers, s)
		w.AddServer(s)
	}

	// Hyperlinks: same-server links plus a few cross-server ones. Pages
	// iterate in sorted path order to keep generation deterministic.
	for _, s := range servers {
		paths := make([]string, 0, len(s.Pages))
		for path := range s.Pages {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		for _, path := range paths {
			p := s.Pages[path]
			nLinks := rng.Intn(cfg.LinksPerPageMax + 1)
			for l := 0; l < nLinks; l++ {
				if rng.Float64() < 0.6 {
					p.Links = append(p.Links, s.URL(fmt.Sprintf("/p/%d.html", rng.Intn(len(s.Pages)))))
				} else {
					target := servers[zipfIndex(rng, len(servers))]
					p.Links = append(p.Links, target.URL(fmt.Sprintf("/p/%d.html", rng.Intn(len(target.Pages)))))
				}
			}
		}
	}
	return w
}

// zipfIndex draws an index in [0, n) with a Zipf-like skew toward 0.
func zipfIndex(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	// Squaring a uniform draws low indices more often; cheap and seedable.
	x := rng.Float64()
	i := int(float64(n) * x * x)
	if i >= n {
		i = n - 1
	}
	return i
}
