package websim

import (
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Handler adapts the synthetic web to net/http: requests to
// "/<host>/<path>" are served from the corresponding synthetic server.
// This lets integration tests and the reefd binary exercise the real HTTP
// stack against the simulated web.
type Handler struct {
	Web *Web
}

var _ http.Handler = (*Handler)(nil)

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	// Path form: /<host>/<rest...>
	path := req.URL.Path
	if len(path) < 2 {
		http.Error(rw, "missing host segment", http.StatusBadRequest)
		return
	}
	host, rest := path[1:], "/"
	for i := 1; i < len(path); i++ {
		if path[i] == '/' {
			host, rest = path[1:i], path[i:]
			break
		}
	}
	res, err := h.Web.Fetch("http://" + host + rest)
	switch {
	case err == nil:
		rw.Header().Set("Content-Type", res.ContentType)
		_, _ = rw.Write(res.Body)
	case errors.Is(err, ErrNotFound):
		http.Error(rw, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrServerDown):
		http.Error(rw, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(rw, err.Error(), http.StatusBadRequest)
	}
}

// HTTPFetcher is a Fetcher that rewrites synthetic URLs onto a Handler
// served at baseURL and fetches them over real HTTP.
type HTTPFetcher struct {
	// BaseURL is where a Handler is mounted, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
}

var _ Fetcher = (*HTTPFetcher)(nil)

// Fetch implements Fetcher over real HTTP.
func (f *HTTPFetcher) Fetch(url string) (*Resource, error) {
	host, path, err := SplitURL(url)
	if err != nil {
		return nil, err
	}
	client := f.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(f.BaseURL + "/" + host + path)
	if err != nil {
		return nil, fmt.Errorf("websim: http fetch %s: %w", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, url)
	}
	if resp.StatusCode == http.StatusServiceUnavailable {
		return nil, fmt.Errorf("%w: %s", ErrServerDown, url)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("websim: http fetch %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, fmt.Errorf("websim: reading %s: %w", url, err)
	}
	return &Resource{
		URL:         url,
		ContentType: resp.Header.Get("Content-Type"),
		Body:        body,
	}, nil
}
