package websim

import (
	"net/http/httptest"
	"strings"
	"testing"

	"reef/internal/topics"
)

func TestHandlerServesWeb(t *testing.T) {
	model := topics.NewModel(21, 4, 20, 20)
	cfg := smallConfig(21)
	w := Generate(cfg, model)
	srv := httptest.NewServer(&Handler{Web: w})
	defer srv.Close()

	f := &HTTPFetcher{BaseURL: srv.URL}
	content := w.Servers(KindContent)[0]
	var page *Page
	for _, p := range content.Pages {
		page = p
		break
	}
	res, err := f.Fetch(content.URL(page.Path))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.ContentType, "text/html") {
		t.Errorf("ContentType = %q", res.ContentType)
	}
	if !strings.Contains(string(res.Body), page.Title) {
		t.Error("HTTP-fetched page missing title")
	}
}

func TestHandlerErrors(t *testing.T) {
	model := topics.NewModel(22, 4, 20, 20)
	w := Generate(smallConfig(22), model)
	srv := httptest.NewServer(&Handler{Web: w})
	defer srv.Close()
	f := &HTTPFetcher{BaseURL: srv.URL}

	if _, err := f.Fetch("http://nosuch.host.test/x"); err == nil {
		t.Error("unknown host fetched over HTTP")
	}
	s := w.Servers(KindContent)[0]
	w.SetDown(s.Host, true)
	if _, err := f.Fetch(s.URL("/p/0.html")); err == nil {
		t.Error("down host fetched over HTTP")
	}
}

func TestHandlerBadPath(t *testing.T) {
	model := topics.NewModel(23, 2, 10, 10)
	w := Generate(smallConfig(23), model)
	srv := httptest.NewServer(&Handler{Web: w})
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Error("empty path served 200")
	}
}
