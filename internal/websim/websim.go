// Package websim is the deterministic synthetic Web used in place of the
// live Web the paper's test users browsed (see DESIGN.md §2). It hosts
// content servers (topical pages with hyperlinks, embedded ad references
// and RSS/Atom autodiscovery links), advertisement servers, spam sites and
// multimedia servers. Feeds update on a schedule as simulated time
// advances, so the WAIF proxy and crawler exercise the same code paths they
// would against real services.
package websim

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"reef/internal/feed"
	"reef/internal/topics"
)

// ServerKind classifies a synthetic web server.
type ServerKind int

// Server kinds.
const (
	KindContent ServerKind = iota + 1
	KindAd
	KindSpam
	KindMultimedia
)

// String names the kind.
func (k ServerKind) String() string {
	switch k {
	case KindContent:
		return "content"
	case KindAd:
		return "ad"
	case KindSpam:
		return "spam"
	case KindMultimedia:
		return "multimedia"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Page is one HTML page of a content, ad, or spam server.
type Page struct {
	// Path is the server-relative path, e.g. "/p/3.html".
	Path string
	// Title is the page title.
	Title string
	// Text is the body text (topical pseudo-words).
	Text string
	// Links are absolute URLs of hyperlinked pages.
	Links []string
	// AdRefs are absolute URLs of ad-server resources the page embeds;
	// a browser visiting the page also requests these.
	AdRefs []string
	// FeedPaths are server-relative paths of feeds this page advertises
	// via autodiscovery links.
	FeedPaths []string
	// Mixture records the topic mixture the text was drawn from (ground
	// truth for experiments; not exposed in HTML).
	Mixture topics.Mixture
}

// FeedSpec is a live feed hosted by a server: a document that grows new
// items as simulated time advances.
type FeedSpec struct {
	// Path is the server-relative path, e.g. "/feeds/0.xml".
	Path string
	// Feed is the current document.
	Feed *feed.Feed
	// UpdateEvery is the publication interval.
	UpdateEvery time.Duration
	// NextUpdate is when the next item appears.
	NextUpdate time.Time
	// Mixture drives item text.
	Mixture topics.Mixture

	counter int
}

// Server is one synthetic web host.
type Server struct {
	// Host is the DNS-style name, e.g. "c0042.web.test".
	Host string
	// Kind classifies the server.
	Kind ServerKind
	// Mixture is the server's topical leaning (content servers only).
	Mixture topics.Mixture
	// Pages maps path to page.
	Pages map[string]*Page
	// Feeds maps path to feed spec.
	Feeds map[string]*FeedSpec
}

// URL returns the absolute URL of a server-relative path.
func (s *Server) URL(path string) string {
	return "http://" + s.Host + path
}

// PageURLs returns the absolute URLs of all pages, sorted by path order of
// insertion (callers needing determinism sort themselves).
func (s *Server) PageURLs() []string {
	out := make([]string, 0, len(s.Pages))
	for p := range s.Pages {
		out = append(out, s.URL(p))
	}
	return out
}

// Resource is a fetched web resource.
type Resource struct {
	URL         string
	ContentType string
	Body        []byte
}

// Fetcher retrieves web resources; the crawler and WAIF proxy depend on
// this interface so tests can substitute failures and real HTTP can be
// swapped in.
type Fetcher interface {
	Fetch(url string) (*Resource, error)
}

// Fetch errors.
var (
	ErrNotFound   = errors.New("websim: not found")
	ErrBadURL     = errors.New("websim: malformed url")
	ErrServerDown = errors.New("websim: server down")
)

// Web is the synthetic web: a set of servers plus the topic model and
// simulated feed time. It is safe for concurrent use.
type Web struct {
	mu      sync.Mutex
	servers map[string]*Server
	model   *topics.Model
	now     time.Time

	fetches    int64
	bytesSent  int64
	downHosts  map[string]bool
	genCounter int
}

// NewWeb creates an empty web whose feed clock starts at start.
func NewWeb(model *topics.Model, start time.Time) *Web {
	return &Web{
		servers:   make(map[string]*Server),
		model:     model,
		now:       start,
		downHosts: make(map[string]bool),
	}
}

// Model returns the topic model backing the web.
func (w *Web) Model() *topics.Model { return w.model }

// AddServer registers a server. Duplicate hosts are replaced.
func (w *Web) AddServer(s *Server) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.servers[s.Host] = s
}

// Server returns the server for a host.
func (w *Web) Server(host string) (*Server, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	s, ok := w.servers[host]
	return s, ok
}

// Servers returns all servers of the given kinds (all kinds when none
// given), in unspecified order.
func (w *Web) Servers(kinds ...ServerKind) []*Server {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []*Server
	for _, s := range w.servers {
		if len(kinds) == 0 {
			out = append(out, s)
			continue
		}
		for _, k := range kinds {
			if s.Kind == k {
				out = append(out, s)
				break
			}
		}
	}
	return out
}

// SetDown marks a host unreachable (failure injection for crawler tests).
func (w *Web) SetDown(host string, down bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.downHosts[host] = down
}

// SplitURL parses "http://host/path" into host and path.
func SplitURL(url string) (host, path string, err error) {
	rest, ok := strings.CutPrefix(url, "http://")
	if !ok {
		rest, ok = strings.CutPrefix(url, "https://")
		if !ok {
			return "", "", fmt.Errorf("%w: %q", ErrBadURL, url)
		}
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		return rest[:i], rest[i:], nil
	}
	return rest, "/", nil
}

// Fetch implements Fetcher against the synthetic web.
func (w *Web) Fetch(url string) (*Resource, error) {
	host, path, err := SplitURL(url)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.downHosts[host] {
		return nil, fmt.Errorf("%w: %s", ErrServerDown, host)
	}
	s, ok := w.servers[host]
	if !ok {
		// One-off tracker hosts (per-impression ad subdomains) exist
		// implicitly: any *.tracker.test host answers with a pixel
		// document. They model the long tail of ad infrastructure that
		// real browsing logs show as servers visited exactly once.
		if strings.HasSuffix(host, ".tracker.test") {
			res := &Resource{
				URL:         url,
				ContentType: "text/html",
				Body:        []byte(`<html><body><img src="/pixel.gif" width="1" height="1"></body></html>`),
			}
			w.fetches++
			w.bytesSent += int64(len(res.Body))
			return res, nil
		}
		return nil, fmt.Errorf("%w: no such host %s", ErrNotFound, host)
	}
	res, err := w.renderLocked(s, path)
	if err != nil {
		return nil, err
	}
	w.fetches++
	w.bytesSent += int64(len(res.Body))
	return res, nil
}

// renderLocked produces the resource at path on server s.
func (w *Web) renderLocked(s *Server, path string) (*Resource, error) {
	if fs, ok := s.Feeds[path]; ok {
		data, err := feed.Render(fs.Feed)
		if err != nil {
			return nil, err
		}
		return &Resource{URL: s.URL(path), ContentType: "application/xml", Body: data}, nil
	}
	if p, ok := s.Pages[path]; ok {
		switch s.Kind {
		case KindMultimedia:
			return &Resource{
				URL:         s.URL(path),
				ContentType: "video/mp4",
				Body:        []byte("SYNTHETIC-MEDIA " + p.Title),
			}, nil
		default:
			return &Resource{
				URL:         s.URL(path),
				ContentType: "text/html",
				Body:        []byte(RenderHTML(s, p)),
			}, nil
		}
	}
	// Ad servers answer any path with a synthetic banner (real ad servers
	// mint unique URLs per impression).
	if s.Kind == KindAd {
		return &Resource{
			URL:         s.URL(path),
			ContentType: "text/html",
			Body:        []byte(renderAdHTML(s, path)),
		}, nil
	}
	return nil, fmt.Errorf("%w: %s%s", ErrNotFound, s.Host, path)
}

// Stats reports fetch counters (network-load experiments F1/F2).
func (w *Web) Stats() (fetches, bytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fetches, w.bytesSent
}

// ResetStats zeroes the fetch counters.
func (w *Web) ResetStats() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fetches, w.bytesSent = 0, 0
}

// Now returns the web's simulated feed time.
func (w *Web) Now() time.Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.now
}

// AdvanceTo moves simulated time forward, publishing any feed items that
// come due. Moving backwards is a no-op.
func (w *Web) AdvanceTo(now time.Time) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if now.Before(w.now) {
		return
	}
	w.now = now
	for _, s := range w.servers {
		for _, fs := range s.Feeds {
			w.updateFeedLocked(s, fs)
		}
	}
}

// updateFeedLocked appends items to fs until NextUpdate passes w.now.
func (w *Web) updateFeedLocked(s *Server, fs *FeedSpec) {
	for !fs.NextUpdate.After(w.now) {
		fs.counter++
		w.genCounter++
		title := fmt.Sprintf("%s item %d", fs.Feed.Title, fs.counter)
		guid := fmt.Sprintf("%s%s#%d", s.Host, fs.Path, fs.counter)
		link := s.URL(fmt.Sprintf("/story/%d.html", fs.counter))
		// Deterministic item text: a fixed phrase from the server mixture
		// vocabulary keyed by the counter.
		desc := w.deterministicText(fs.Mixture, 24, uint64(fs.counter)*2654435761)
		fs.Feed.Items = append([]feed.Item{{
			GUID:        guid,
			Title:       title,
			Link:        link,
			Description: desc,
			Published:   fs.NextUpdate,
		}}, fs.Feed.Items...)
		if len(fs.Feed.Items) > 50 {
			fs.Feed.Items = fs.Feed.Items[:50] // feeds window old items out
		}
		fs.NextUpdate = fs.NextUpdate.Add(fs.UpdateEvery)
	}
}

// deterministicText emits n pseudo-words from the mixture's topics using a
// simple hash stream (no shared rng, so concurrent fetches stay
// deterministic).
func (w *Web) deterministicText(mx topics.Mixture, n int, seed uint64) string {
	if len(mx) == 0 || w.model == nil {
		return ""
	}
	idxs := make([]int, 0, len(mx))
	for t := range mx {
		idxs = append(idxs, t)
	}
	// Insertion-sort for determinism.
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0 && idxs[j] < idxs[j-1]; j-- {
			idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
		}
	}
	var sb strings.Builder
	x := seed
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		t := idxs[int(x>>33)%len(idxs)]
		words := w.model.Topics[t%len(w.model.Topics)].Words
		x = x*6364136223846793005 + 1442695040888963407
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(words[int(x>>33)%len(words)])
	}
	return sb.String()
}

// RenderHTML renders a page as HTML, including autodiscovery links for its
// feeds, hyperlinks, and embedded ad references.
func RenderHTML(s *Server, p *Page) string {
	var sb strings.Builder
	sb.WriteString("<html><head><title>")
	sb.WriteString(p.Title)
	sb.WriteString("</title>\n")
	for _, fp := range p.FeedPaths {
		sb.WriteString(`<link rel="alternate" type="application/rss+xml" title="`)
		sb.WriteString(p.Title)
		sb.WriteString(` feed" href="`)
		sb.WriteString(fp)
		sb.WriteString("\">\n")
	}
	sb.WriteString("</head><body>\n<p>")
	sb.WriteString(p.Text)
	sb.WriteString("</p>\n")
	for _, l := range p.Links {
		sb.WriteString(`<a href="`)
		sb.WriteString(l)
		sb.WriteString(`">link</a>` + "\n")
	}
	for _, a := range p.AdRefs {
		sb.WriteString(`<img src="`)
		sb.WriteString(a)
		sb.WriteString(`" width="468" height="60">` + "\n")
	}
	if s.Kind == KindSpam {
		// Spam pages stuff keywords: repeat the body many times.
		for i := 0; i < 20; i++ {
			sb.WriteString("<p>")
			sb.WriteString(p.Text)
			sb.WriteString("</p>\n")
		}
	}
	sb.WriteString("</body></html>\n")
	return sb.String()
}

// renderAdHTML renders the tiny redirect-style documents ad servers serve.
func renderAdHTML(s *Server, path string) string {
	return fmt.Sprintf(`<html><head><meta http-equiv="refresh" content="0;url=http://%s/click%s">`+
		`</head><body><img src="http://%s/pixel.gif" width="1" height="1"></body></html>`,
		s.Host, path, s.Host)
}

// ExtractText strips tags from rendered HTML, returning body text for the
// crawler's keyword extraction. Minimal but sufficient for synthetic pages.
func ExtractText(html []byte) string {
	var sb strings.Builder
	in := false
	for _, c := range string(html) {
		switch {
		case c == '<':
			in = true
		case c == '>':
			in = false
			sb.WriteByte(' ')
		case !in:
			sb.WriteRune(c)
		}
	}
	return sb.String()
}

// ExtractLinks returns the href targets of <a> tags, resolved against the
// page URL.
func ExtractLinks(pageURL string, html []byte) []string {
	var out []string
	s := string(html)
	lower := strings.ToLower(s)
	for i := 0; i < len(s); {
		start := strings.Index(lower[i:], "<a ")
		if start < 0 {
			break
		}
		start += i
		end := strings.IndexByte(s[start:], '>')
		if end < 0 {
			break
		}
		end += start
		tag := s[start:end]
		i = end + 1
		hrefIdx := strings.Index(strings.ToLower(tag), "href=")
		if hrefIdx < 0 {
			continue
		}
		rest := tag[hrefIdx+5:]
		var href string
		if len(rest) > 0 && (rest[0] == '"' || rest[0] == '\'') {
			q := rest[0]
			if j := strings.IndexByte(rest[1:], q); j >= 0 {
				href = rest[1 : 1+j]
			}
		} else if j := strings.IndexAny(rest, " >"); j >= 0 {
			href = rest[:j]
		} else {
			href = rest
		}
		if href != "" {
			out = append(out, feed.ResolveRef(pageURL, href))
		}
	}
	return out
}
