package websim

import (
	"strings"
	"testing"
	"time"

	"reef/internal/feed"
	"reef/internal/topics"
)

var simStart = time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)

func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed, simStart)
	cfg.NumContentServers = 30
	cfg.NumAdServers = 20
	cfg.NumSpamServers = 3
	cfg.NumMultimediaServers = 2
	return cfg
}

func smallWeb(t *testing.T, seed int64) *Web {
	t.Helper()
	model := topics.NewModel(seed, 8, 30, 40)
	return Generate(smallConfig(seed), model)
}

func TestGenerateShape(t *testing.T) {
	w := smallWeb(t, 1)
	if got := len(w.Servers(KindContent)); got != 30 {
		t.Errorf("content servers = %d", got)
	}
	if got := len(w.Servers(KindAd)); got != 20 {
		t.Errorf("ad servers = %d", got)
	}
	if got := len(w.Servers(KindSpam)); got != 3 {
		t.Errorf("spam servers = %d", got)
	}
	if got := len(w.Servers()); got != 55 {
		t.Errorf("all servers = %d", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w1, w2 := smallWeb(t, 7), smallWeb(t, 7)
	s1 := w1.Servers(KindContent)
	for _, s := range s1 {
		peer, ok := w2.Server(s.Host)
		if !ok {
			t.Fatalf("host %s missing in twin web", s.Host)
		}
		if len(peer.Pages) != len(s.Pages) {
			t.Fatalf("page count differs on %s", s.Host)
		}
		for path, p := range s.Pages {
			q, ok := peer.Pages[path]
			if !ok || q.Text != p.Text {
				t.Fatalf("page %s%s differs across same-seed webs", s.Host, path)
			}
		}
	}
}

func TestFetchContentPage(t *testing.T) {
	w := smallWeb(t, 2)
	var target *Server
	for _, s := range w.Servers(KindContent) {
		if len(s.Pages) > 0 {
			target = s
			break
		}
	}
	var page *Page
	for _, p := range target.Pages {
		page = p
		break
	}
	res, err := w.Fetch(target.URL(page.Path))
	if err != nil {
		t.Fatal(err)
	}
	if res.ContentType != "text/html" {
		t.Errorf("ContentType = %q", res.ContentType)
	}
	if !strings.Contains(string(res.Body), page.Title) {
		t.Error("rendered page missing title")
	}
	fetches, bytes := w.Stats()
	if fetches != 1 || bytes <= 0 {
		t.Errorf("stats = (%d, %d)", fetches, bytes)
	}
}

func TestFetchErrors(t *testing.T) {
	w := smallWeb(t, 3)
	if _, err := w.Fetch("gopher://x"); err == nil {
		t.Error("bad scheme accepted")
	}
	if _, err := w.Fetch("http://nosuch.host.test/"); err == nil {
		t.Error("unknown host accepted")
	}
	s := w.Servers(KindContent)[0]
	if _, err := w.Fetch(s.URL("/nosuch.html")); err == nil {
		t.Error("unknown path accepted")
	}
	w.SetDown(s.Host, true)
	if _, err := w.Fetch(s.URL("/p/0.html")); err == nil {
		t.Error("down host served")
	}
	w.SetDown(s.Host, false)
}

func TestAdServerAnswersAnyPath(t *testing.T) {
	w := smallWeb(t, 4)
	ad := w.Servers(KindAd)[0]
	res, err := w.Fetch(ad.URL("/banner/12345"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(res.Body), "refresh") {
		t.Error("ad page missing redirect signature")
	}
}

func TestFeedAutodiscoveryRoundTrip(t *testing.T) {
	w := smallWeb(t, 5)
	var hostWithFeed *Server
	for _, s := range w.Servers(KindContent) {
		if len(s.Feeds) > 0 {
			hostWithFeed = s
			break
		}
	}
	if hostWithFeed == nil {
		t.Skip("seed produced no feed hosts at this scale")
	}
	var page *Page
	for _, p := range hostWithFeed.Pages {
		page = p
		break
	}
	res, err := w.Fetch(hostWithFeed.URL(page.Path))
	if err != nil {
		t.Fatal(err)
	}
	found := feed.Discover(res.URL, res.Body)
	if len(found) == 0 {
		t.Fatal("autodiscovery found nothing on a feed-hosting page")
	}
	// The discovered feed must itself fetch and parse.
	fres, err := w.Fetch(found[0].Href)
	if err != nil {
		t.Fatalf("fetching discovered feed: %v", err)
	}
	if _, err := feed.Parse(fres.URL, fres.Body); err != nil {
		t.Fatalf("parsing discovered feed: %v", err)
	}
}

func TestFeedsUpdateWithTime(t *testing.T) {
	w := smallWeb(t, 6)
	var fs *FeedSpec
	var host *Server
	for _, s := range w.Servers(KindContent) {
		for _, f := range s.Feeds {
			fs, host = f, s
			break
		}
		if fs != nil {
			break
		}
	}
	if fs == nil {
		t.Skip("no feeds at this scale")
	}
	if len(fs.Feed.Items) != 0 {
		t.Fatalf("feed has %d items before time advances", len(fs.Feed.Items))
	}
	w.AdvanceTo(simStart.Add(14 * 24 * time.Hour))
	if len(fs.Feed.Items) == 0 {
		t.Fatal("feed has no items after two weeks")
	}
	// Items must be newest-first with valid GUIDs.
	items := fs.Feed.Items
	for i := 1; i < len(items); i++ {
		if items[i-1].Published.Before(items[i].Published) {
			t.Fatal("items not newest-first")
		}
	}
	for _, it := range items {
		if it.GUID == "" || it.Link == "" {
			t.Fatalf("bad item: %+v", it)
		}
	}
	// Backwards advance is a no-op.
	before := len(items)
	w.AdvanceTo(simStart)
	if len(fs.Feed.Items) != before {
		t.Error("backwards AdvanceTo mutated feed")
	}
	_ = host
}

func TestMultimediaContentType(t *testing.T) {
	w := smallWeb(t, 8)
	mm := w.Servers(KindMultimedia)[0]
	res, err := w.Fetch(mm.URL("/v/0.mp4"))
	if err != nil {
		t.Fatal(err)
	}
	if res.ContentType != "video/mp4" {
		t.Errorf("ContentType = %q", res.ContentType)
	}
}

func TestSpamPagesAreStuffed(t *testing.T) {
	w := smallWeb(t, 9)
	sp := w.Servers(KindSpam)[0]
	res, err := w.Fetch(sp.URL("/offer/0.html"))
	if err != nil {
		t.Fatal(err)
	}
	body := string(res.Body)
	// The body text repeats at least 20 times.
	text := sp.Pages["/offer/0.html"].Text
	first := strings.Fields(text)[0]
	if strings.Count(body, first) < 10 {
		t.Error("spam page not keyword-stuffed")
	}
}

func TestExtractText(t *testing.T) {
	got := ExtractText([]byte("<html><body><p>hello world</p></body></html>"))
	if !strings.Contains(got, "hello world") {
		t.Errorf("ExtractText = %q", got)
	}
	if strings.Contains(got, "<") {
		t.Error("tags leaked into text")
	}
}

func TestExtractLinks(t *testing.T) {
	html := []byte(`<a href="/x.html">x</a> <A HREF='http://other.test/y'>y</A> <a name="anchor">z</a>`)
	got := ExtractLinks("http://h.test/dir/page.html", html)
	if len(got) != 2 {
		t.Fatalf("links = %v", got)
	}
	if got[0] != "http://h.test/x.html" || got[1] != "http://other.test/y" {
		t.Errorf("links = %v", got)
	}
}

func TestSplitURL(t *testing.T) {
	host, path, err := SplitURL("http://a.test/b/c")
	if err != nil || host != "a.test" || path != "/b/c" {
		t.Errorf("SplitURL = (%q, %q, %v)", host, path, err)
	}
	host, path, err = SplitURL("https://a.test")
	if err != nil || host != "a.test" || path != "/" {
		t.Errorf("SplitURL no-path = (%q, %q, %v)", host, path, err)
	}
	if _, _, err := SplitURL("ftp://a.test/x"); err == nil {
		t.Error("ftp accepted")
	}
}

func TestServerKindString(t *testing.T) {
	if KindContent.String() != "content" || KindAd.String() != "ad" ||
		KindSpam.String() != "spam" || KindMultimedia.String() != "multimedia" {
		t.Error("kind names wrong")
	}
}
