// Package workload generates the synthetic browsing histories that replace
// the paper's ten weeks of real user traffic (§3.2: five users, 77,000+
// requests). Users carry interest profiles over the topic model; each
// simulated day they run browsing sessions against the synthetic web,
// preferring servers matching their interests, occasionally exploring at
// random, and implicitly fetching every ad resource embedded in the pages
// they visit — reproducing the ~70% advertisement share of real traffic.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"reef/internal/attention"
	"reef/internal/topics"
	"reef/internal/websim"
)

// User is a simulated browser user.
type User struct {
	// ID is the user cookie.
	ID string
	// Profile is the user's interest mixture.
	Profile topics.InterestProfile
}

// Config tunes workload generation. Defaults (DefaultConfig) are calibrated
// to the paper's aggregate statistics.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// NumUsers defaults to the paper's 5.
	NumUsers int
	// Days defaults to the paper's 70 (ten weeks).
	Days int
	// Start is the first day of the observation window.
	Start time.Time

	// SessionsPerDayMin/Max bound browsing sessions per user-day.
	SessionsPerDayMin, SessionsPerDayMax int
	// PagesPerSessionMin/Max bound page views per session.
	PagesPerSessionMin, PagesPerSessionMax int
	// ExploreProb is the chance a session starts on a random server
	// rather than an interest-matched one (drives singleton visits).
	ExploreProb float64
	// UniqueTrackerProb is the per-page-view chance of one extra request
	// to a never-seen-again per-impression tracker host (the main source
	// of the paper's "807 servers visited only once").
	UniqueTrackerProb float64
	// CoreTopics/MinorTopics size each user's interest profile.
	CoreTopics, MinorTopics int
}

// DefaultConfig returns the E1 calibration.
func DefaultConfig(seed int64, start time.Time) Config {
	return Config{
		Seed:               seed,
		NumUsers:           5,
		Days:               70,
		Start:              start,
		SessionsPerDayMin:  2,
		SessionsPerDayMax:  5,
		PagesPerSessionMin: 12,
		PagesPerSessionMax: 32,
		ExploreProb:        0.22,
		UniqueTrackerProb:  0.033,
		CoreTopics:         2,
		MinorTopics:        3,
	}
}

// DefaultConfigAdjusted returns the E1 calibration with the user and day
// counts overridden (non-positive values keep the defaults).
func DefaultConfigAdjusted(seed int64, start time.Time, users, days int) Config {
	cfg := DefaultConfig(seed, start)
	if users > 0 {
		cfg.NumUsers = users
	}
	if days > 0 {
		cfg.Days = days
	}
	return cfg
}

// Generator produces browsing clicks against a synthetic web.
type Generator struct {
	cfg   Config
	web   *websim.Web
	model *topics.Model
	rng   *rand.Rand
	users []User

	// serverAffinity caches, per user, the content servers weighted by
	// profile affinity.
	contentServers []*websim.Server
	// trackerSeq mints unique per-impression tracker hosts.
	trackerSeq int
}

// NewGenerator builds a generator and its user population.
func NewGenerator(cfg Config, web *websim.Web) *Generator {
	if cfg.NumUsers <= 0 {
		cfg.NumUsers = 5
	}
	if cfg.Days <= 0 {
		cfg.Days = 70
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Generator{cfg: cfg, web: web, model: web.Model(), rng: rng}

	servers := web.Servers(websim.KindContent)
	sort.Slice(servers, func(i, j int) bool { return servers[i].Host < servers[j].Host })
	g.contentServers = servers

	for i := 0; i < cfg.NumUsers; i++ {
		id := fmt.Sprintf("user%02d", i)
		g.users = append(g.users, User{
			ID:      id,
			Profile: topics.NewInterestProfile(rng, id, g.model.NumTopics(), cfg.CoreTopics, cfg.MinorTopics),
		})
	}
	return g
}

// Users returns the generated population.
func (g *Generator) Users() []User { return g.users }

// pickServer selects a session's starting server: interest-weighted
// normally, uniform-random when exploring.
func (g *Generator) pickServer(u User, explore bool) *websim.Server {
	if len(g.contentServers) == 0 {
		return nil
	}
	if explore {
		return g.contentServers[g.rng.Intn(len(g.contentServers))]
	}
	// Rejection-sample by affinity: try a handful of candidates and keep
	// the best; popular (low-index) servers get a Zipf prior.
	var best *websim.Server
	var bestScore float64
	for try := 0; try < 6; try++ {
		x := g.rng.Float64()
		idx := int(float64(len(g.contentServers)) * x * x)
		if idx >= len(g.contentServers) {
			idx = len(g.contentServers) - 1
		}
		s := g.contentServers[idx]
		score := u.Profile.Affinity(s.Mixture) + g.rng.Float64()*0.05
		if best == nil || score > bestScore {
			best, bestScore = s, score
		}
	}
	return best
}

// Day is one generated user-day of clicks.
type Day struct {
	User   string
	Date   time.Time
	Clicks []attention.Click
}

// GenerateAll produces the whole observation window, invoking emit once
// per user-day in chronological order. Page views come first in a session,
// each followed by its ad fetches, mirroring browser subresource loading.
func (g *Generator) GenerateAll(emit func(Day)) {
	for day := 0; day < g.cfg.Days; day++ {
		date := g.cfg.Start.Add(time.Duration(day) * 24 * time.Hour)
		for _, u := range g.users {
			d := g.generateDay(u, date)
			emit(d)
		}
	}
}

// generateDay produces one user's clicks for one day.
func (g *Generator) generateDay(u User, date time.Time) Day {
	d := Day{User: u.ID, Date: date}
	nSessions := g.cfg.SessionsPerDayMin
	if g.cfg.SessionsPerDayMax > g.cfg.SessionsPerDayMin {
		nSessions += g.rng.Intn(g.cfg.SessionsPerDayMax - g.cfg.SessionsPerDayMin + 1)
	}
	at := date.Add(time.Duration(7+g.rng.Intn(3)) * time.Hour) // day starts ~7-9am
	for s := 0; s < nSessions; s++ {
		explore := g.rng.Float64() < g.cfg.ExploreProb
		server := g.pickServer(u, explore)
		if server == nil {
			continue
		}
		nPages := g.cfg.PagesPerSessionMin
		if g.cfg.PagesPerSessionMax > g.cfg.PagesPerSessionMin {
			nPages += g.rng.Intn(g.cfg.PagesPerSessionMax - g.cfg.PagesPerSessionMin + 1)
		}
		if explore {
			// Exploration sessions are brief: often a single page view,
			// producing the long tail of servers visited only once.
			nPages = 1 + g.rng.Intn(2)
		}
		var prevURL string
		for pv := 0; pv < nPages; pv++ {
			page := g.pickPage(server)
			if page == nil {
				break
			}
			url := server.URL(page.Path)
			click := attention.Click{User: u.ID, URL: url, At: at, Referrer: prevURL}
			d.Clicks = append(d.Clicks, click)
			// Browser fetches embedded ad resources.
			for _, ad := range page.AdRefs {
				at = at.Add(time.Duration(200+g.rng.Intn(400)) * time.Millisecond)
				d.Clicks = append(d.Clicks, attention.Click{
					User: u.ID, URL: ad, At: at, Referrer: url,
				})
			}
			// Per-impression tracker hosts: rotated subdomains that
			// appear once and never again.
			if g.rng.Float64() < g.cfg.UniqueTrackerProb {
				g.trackerSeq++
				d.Clicks = append(d.Clicks, attention.Click{
					User: u.ID,
					URL:  fmt.Sprintf("http://u%06d.tracker.test/pixel.gif", g.trackerSeq),
					At:   at, Referrer: url,
				})
			}
			prevURL = url
			at = at.Add(time.Duration(20+g.rng.Intn(160)) * time.Second)

			// Follow an on-page link to another server sometimes.
			if len(page.Links) > 0 && g.rng.Float64() < 0.3 {
				target := page.Links[g.rng.Intn(len(page.Links))]
				if host, _, err := websim.SplitURL(target); err == nil {
					if next, ok := g.web.Server(host); ok {
						server = next
					}
				}
			}
		}
		at = at.Add(time.Duration(30+g.rng.Intn(120)) * time.Minute)
	}
	return d
}

// pickPage selects a page on the server, favoring low-numbered (popular)
// pages.
func (g *Generator) pickPage(s *websim.Server) *websim.Page {
	if len(s.Pages) == 0 {
		return nil
	}
	paths := make([]string, 0, len(s.Pages))
	for p := range s.Pages {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	x := g.rng.Float64()
	idx := int(float64(len(paths)) * x * x)
	if idx >= len(paths) {
		idx = len(paths) - 1
	}
	return s.Pages[paths[idx]]
}
