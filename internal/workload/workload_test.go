package workload

import (
	"strings"
	"testing"
	"time"

	"reef/internal/topics"
	"reef/internal/websim"
)

var simStart = time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)

func testWebAndGen(seed int64, users, days int) (*websim.Web, *Generator) {
	model := topics.NewModel(seed, 10, 30, 40)
	wcfg := websim.DefaultConfig(seed, simStart)
	wcfg.NumContentServers = 120
	wcfg.NumAdServers = 80
	wcfg.NumSpamServers = 5
	wcfg.NumMultimediaServers = 3
	web := websim.Generate(wcfg, model)
	cfg := DefaultConfig(seed, simStart)
	cfg.NumUsers = users
	cfg.Days = days
	return web, NewGenerator(cfg, web)
}

func TestGeneratorUsers(t *testing.T) {
	_, g := testWebAndGen(1, 5, 1)
	users := g.Users()
	if len(users) != 5 {
		t.Fatalf("users = %d", len(users))
	}
	seen := map[string]bool{}
	for _, u := range users {
		if seen[u.ID] {
			t.Fatal("duplicate user ID")
		}
		seen[u.ID] = true
		if len(u.Profile.Mixture) == 0 {
			t.Fatal("user without interests")
		}
	}
}

func TestGenerateAllShape(t *testing.T) {
	_, g := testWebAndGen(2, 3, 7)
	days := 0
	users := map[string]int{}
	var clicks int
	g.GenerateAll(func(d Day) {
		days++
		users[d.User]++
		clicks += len(d.Clicks)
		for _, c := range d.Clicks {
			if c.User != d.User {
				t.Fatal("click user mismatch")
			}
			if c.At.Before(d.Date) {
				t.Fatal("click before day start")
			}
		}
	})
	if days != 3*7 {
		t.Fatalf("user-days = %d, want 21", days)
	}
	for u, n := range users {
		if n != 7 {
			t.Fatalf("user %s has %d days", u, n)
		}
	}
	if clicks == 0 {
		t.Fatal("no clicks generated")
	}
}

func TestAdShare(t *testing.T) {
	_, g := testWebAndGen(3, 5, 10)
	var total, ads int
	g.GenerateAll(func(d Day) {
		for _, c := range d.Clicks {
			total++
			if strings.Contains(c.URL, ".adnet.") {
				ads++
			}
		}
	})
	share := float64(ads) / float64(total)
	if share < 0.5 || share > 0.85 {
		t.Errorf("ad share = %.2f, want around 0.7", share)
	}
}

func TestChronologicalWithinDay(t *testing.T) {
	_, g := testWebAndGen(4, 1, 3)
	g.GenerateAll(func(d Day) {
		for i := 1; i < len(d.Clicks); i++ {
			if d.Clicks[i].At.Before(d.Clicks[i-1].At) {
				t.Fatal("clicks not chronological")
			}
		}
	})
}

func TestDeterministicAcrossRuns(t *testing.T) {
	collect := func() []Day {
		_, g := testWebAndGen(5, 2, 3)
		var out []Day
		g.GenerateAll(func(d Day) { out = append(out, d) })
		return out
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatal("different day counts")
	}
	for i := range a {
		if len(a[i].Clicks) != len(b[i].Clicks) {
			t.Fatalf("day %d click counts differ", i)
		}
		for j := range a[i].Clicks {
			if a[i].Clicks[j].URL != b[i].Clicks[j].URL {
				t.Fatalf("day %d click %d differs", i, j)
			}
		}
	}
}

func TestInterestBiasInVisits(t *testing.T) {
	web, g := testWebAndGen(6, 1, 20)
	u := g.Users()[0]
	visits := map[int]float64{} // topic -> visit weight
	g.GenerateAll(func(d Day) {
		for _, c := range d.Clicks {
			host := c.Host()
			s, ok := web.Server(host)
			if !ok || s.Kind != websim.KindContent {
				continue
			}
			for topic, w := range s.Mixture {
				visits[topic] += w
			}
		}
	})
	// The user's core topics should attract more visit mass than a
	// uniform spread would give them.
	var coreMass, totalMass float64
	for topic, w := range visits {
		totalMass += w
		if u.Profile.Mixture[topic] > 0.2 {
			coreMass += w
		}
	}
	if totalMass == 0 {
		t.Fatal("no content visits")
	}
	if coreMass/totalMass < 0.3 {
		t.Errorf("core-topic visit share = %.2f, want interest bias", coreMass/totalMass)
	}
}

func TestExploreProducessSingletons(t *testing.T) {
	_, g := testWebAndGen(7, 5, 20)
	hostHits := map[string]int{}
	g.GenerateAll(func(d Day) {
		for _, c := range d.Clicks {
			if h := c.Host(); strings.HasPrefix(h, "c") {
				hostHits[h]++
			}
		}
	})
	singles := 0
	for _, n := range hostHits {
		if n == 1 {
			singles++
		}
	}
	if singles == 0 {
		t.Error("no singleton servers; exploration not working")
	}
}
