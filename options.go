package reef

import (
	"time"

	"reef/internal/frontend"
	"reef/internal/pubsub"
	"reef/internal/simclock"
	"reef/internal/store"
	"reef/internal/waif"
	"reef/internal/websim"
)

// TopicTuning tunes the topic-based (feed) recommender.
type TopicTuning struct {
	// MinHostVisits is how many times the user must have visited a feed's
	// host before the feed is recommended (default 1).
	MinHostVisits int
	// InactiveAfter triggers unsubscribe recommendations for feeds whose
	// host the user stopped visiting (default 21 days).
	InactiveAfter time.Duration
	// MinScore is the feedback score below which an inactive feed is
	// dropped (default 0).
	MinScore float64
}

// ContentTuning tunes the content-based recommender.
type ContentTuning struct {
	// NumTerms is the N of "top N terms" (paper: optimal 30).
	NumTerms int
}

type config struct {
	fetcher         websim.Fetcher
	clickStore      *store.ClickStore
	clock           simclock.Clock
	crawlWorkers    int
	topic           TopicTuning
	content         ContentTuning
	queueSize       int
	policy          DeliveryPolicy
	sidebarCapacity int
	sidebarTTL      time.Duration
	pollEvery       time.Duration
	autoApply       bool
	subscriberFor   func(user string) frontend.Subscriber
	feedPublisher   waif.Publisher
	dataDir         string
	syncPolicy      SyncPolicy
	snapshotEvery   int
	shards          int
	shardsSet       bool
	ackTimeout      time.Duration
	maxAttempts     int
}

func buildConfig(opts []Option) config {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.clock == nil {
		cfg.clock = simclock.Real{}
	}
	return cfg
}

// Option configures a deployment constructor.
type Option func(*config)

// WithFetcher supplies the deployment's access to the web: the crawler's
// fetch path for the centralized deployment, the browser cache for the
// distributed one, and the WAIF proxy's feed poller for both. Required.
func WithFetcher(f websim.Fetcher) Option {
	return func(c *config) { c.fetcher = f }
}

// WithStore injects the click database the centralized deployment records
// attention into; nil (the default) means a fresh in-memory store.
func WithStore(s *store.ClickStore) Option {
	return func(c *config) { c.clickStore = s }
}

// WithClock drives all deployment timestamps (virtual time in
// simulations); the default is the real clock.
func WithClock(clk simclock.Clock) Option {
	return func(c *config) { c.clock = clk }
}

// WithCrawlWorkers bounds the centralized crawler's parallelism.
func WithCrawlWorkers(n int) Option {
	return func(c *config) { c.crawlWorkers = n }
}

// WithTopicTuning tunes the topic-based recommender.
func WithTopicTuning(t TopicTuning) Option {
	return func(c *config) { c.topic = t }
}

// WithContentTuning tunes the content-based recommender.
func WithContentTuning(t ContentTuning) Option {
	return func(c *config) { c.content = t }
}

// WithQueueSize sets the per-subscription event delivery queue length.
func WithQueueSize(n int) Option {
	return func(c *config) { c.queueSize = n }
}

// WithDeliveryPolicy sets the queue-overflow policy for subscriptions the
// deployment places.
func WithDeliveryPolicy(p DeliveryPolicy) Option {
	return func(c *config) { c.policy = p }
}

// WithSidebar tunes each user's sidebar: capacity bounds displayed items,
// ttl expires ignored ones. Zero values keep the defaults (20 items, 24h).
func WithSidebar(capacity int, ttl time.Duration) Option {
	return func(c *config) {
		c.sidebarCapacity = capacity
		c.sidebarTTL = ttl
	}
}

// WithPollInterval sets the WAIF proxy's per-feed poll interval.
func WithPollInterval(d time.Duration) Option {
	return func(c *config) { c.pollEvery = d }
}

// WithAutoApply makes the distributed deployment apply its locally
// generated recommendations immediately (the paper's zero-click behavior)
// instead of queuing them for AcceptRecommendation.
func WithAutoApply(on bool) Option {
	return func(c *config) { c.autoApply = on }
}

// WithSubscriberFactory routes each user's subscriptions to a caller-owned
// subscription point (e.g. a per-user leaf node of a broker overlay)
// instead of the deployment's internal broker.
func WithSubscriberFactory(fn func(user string) frontend.Subscriber) Option {
	return func(c *config) { c.subscriberFor = fn }
}

// WithFeedPublisher routes WAIF feed-item events to a caller-owned
// publisher (e.g. the root node of a broker overlay) instead of the
// deployment's internal broker.
func WithFeedPublisher(p waif.Publisher) Option {
	return func(c *config) { c.feedPublisher = p }
}

// WithDataDir makes the deployment durable: every state mutation appends
// to a write-ahead log under dir, periodic snapshots compact it, and
// construction replays the directory's contents so the deployment resumes
// where it (or a crashed predecessor) left off. The default, no data dir,
// keeps all state in memory.
func WithDataDir(dir string) Option {
	return func(c *config) { c.dataDir = dir }
}

// WithSyncPolicy selects when WAL appends reach stable storage (default
// SyncAsync). Only meaningful together with WithDataDir.
func WithSyncPolicy(p SyncPolicy) Option {
	return func(c *config) { c.syncPolicy = p }
}

// WithSnapshotEvery compacts the WAL with a snapshot after every n
// appended records (default 4096; 0 keeps the default, negative disables
// automatic compaction). Only meaningful together with WithDataDir.
func WithSnapshotEvery(n int) Option {
	return func(c *config) { c.snapshotEvery = n }
}

// WithShards partitions the deployment's users across n independent
// engine shards, each with its own broker lock domain, pending ledger
// and — under WithDataDir — its own journal in a shard-<i>/
// subdirectory. User-addressed calls (clicks, subscriptions,
// recommendations) route to exactly one shard by a stable hash of the
// user identity; publishes fan out to every shard concurrently; stats
// and storage info aggregate across shards. One shard preserves the
// single-engine behavior and on-disk layout exactly. Leaving the
// option off adopts an existing data directory's shard count (fresh
// directories and memory deployments default to 1), so a restart
// without the option never re-shards; an explicit count that differs
// from the directory's migrates when either side is 1 and is refused
// otherwise. n < 1 makes the constructor fail with ErrInvalidArgument.
func WithShards(n int) Option {
	return func(c *config) { c.shards, c.shardsSet = n, true }
}

// WithDeliveryDefaults sets the deployment-wide defaults for
// at-least-once subscriptions that do not tune their own ack timeout or
// max-attempts cap at Subscribe time (defaults: 30s, 5 attempts). Zero
// values keep the package defaults.
func WithDeliveryDefaults(ackTimeout time.Duration, maxAttempts int) Option {
	return func(c *config) {
		c.ackTimeout = ackTimeout
		c.maxAttempts = maxAttempts
	}
}

// subOptions translates the public queue tuning into broker options.
func (c config) subOptions() []pubsub.SubOption {
	var opts []pubsub.SubOption
	if c.queueSize > 0 {
		opts = append(opts, pubsub.WithQueueSize(c.queueSize))
	}
	switch c.policy {
	case DropNewest:
		opts = append(opts, pubsub.WithPolicy(pubsub.DropNewest))
	case DropOldest:
		opts = append(opts, pubsub.WithPolicy(pubsub.DropOldest))
	case Block:
		opts = append(opts, pubsub.WithPolicy(pubsub.Block))
	}
	return opts
}
