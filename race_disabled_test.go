//go:build !race

package reef_test

const raceEnabled = false
