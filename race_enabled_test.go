//go:build race

package reef_test

// raceEnabled reports that this binary was built with -race, which
// deliberately defeats sync.Pool caching and makes allocation counts
// meaningless.
const raceEnabled = true
