package reef

import (
	"context"
	"errors"
	"time"
)

// Sentinel errors returned by Deployment implementations. The REST surface
// (reefhttp) maps them to status codes and the client SDK (reefclient)
// maps them back, so errors.Is works identically against a local
// deployment and a remote one.
var (
	// ErrClosed is returned by operations on a closed deployment.
	ErrClosed = errors.New("reef: deployment closed")
	// ErrNotFound is returned when a named user, subscription or
	// recommendation does not exist.
	ErrNotFound = errors.New("reef: not found")
	// ErrInvalidArgument is returned for malformed input (empty user,
	// bad feed URL, empty event).
	ErrInvalidArgument = errors.New("reef: invalid argument")
	// ErrUnsupported is reserved for deployments that cannot perform an
	// operation at all. None of the built-in deployments return it; the
	// REST surface maps it to 501 so future backends can use it without
	// a wire change.
	ErrUnsupported = errors.New("reef: operation not supported by this deployment")
)

// Recommendation kinds, as stable wire strings.
const (
	KindSubscribeFeed   = "subscribe-feed"
	KindUnsubscribeFeed = "unsubscribe-feed"
	KindContentQuery    = "content-query"
)

// Click is one unit of attention data: an outgoing HTTP request with the
// attributes the paper's prototype logs — URI, timestamp, user cookie —
// plus a flag marking closed-loop clicks on delivered events.
type Click struct {
	User string    `json:"user"`
	URL  string    `json:"url"`
	At   time.Time `json:"at"`
	// Referrer is the page the click came from, when known.
	Referrer string `json:"referrer,omitempty"`
	// FromEvent marks clicks on links inside delivered events; the
	// recommendation service reads these as positive feedback.
	FromEvent bool `json:"from_event,omitempty"`
}

// Event is one pub-sub event injected through the public API. Attributes
// are name-value string pairs matched against subscription filters.
type Event struct {
	Source    string            `json:"source,omitempty"`
	Attrs     map[string]string `json:"attrs"`
	Payload   []byte            `json:"payload,omitempty"`
	Published time.Time         `json:"published,omitempty"`
}

// Term is one weighted profile term of a content-based recommendation.
type Term struct {
	Term  string  `json:"term"`
	Score float64 `json:"score"`
}

// Recommendation is one pending subscribe/unsubscribe action awaiting the
// user's (or the API caller's) accept/reject decision.
type Recommendation struct {
	// ID identifies the pending recommendation for accept/reject calls.
	ID string `json:"id"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	User string `json:"user"`
	// FeedURL is set for feed recommendations.
	FeedURL string `json:"feed_url,omitempty"`
	// Filter is the textual form of the pub-sub filter to place.
	Filter string `json:"filter,omitempty"`
	// Reason is a human-readable explanation.
	Reason string    `json:"reason,omitempty"`
	At     time.Time `json:"at"`
	// Terms carries the selected profile terms for content queries.
	Terms []Term `json:"terms,omitempty"`
}

// Subscription is one live subscription of a user.
type Subscription struct {
	// ID is the subscription's stable identifier: the feed URL for feed
	// subscriptions, the canonical filter text otherwise.
	ID      string    `json:"id"`
	User    string    `json:"user"`
	Kind    string    `json:"kind"`
	FeedURL string    `json:"feed_url,omitempty"`
	Filter  string    `json:"filter,omitempty"`
	Since   time.Time `json:"since"`
	// Guarantee is the delivery tier's wire name ("at_least_once" for
	// reliable subscriptions; empty for best-effort).
	Guarantee string `json:"delivery_guarantee,omitempty"`
	// OrderingKey is the advisory ordering attribute of a reliable
	// subscription.
	OrderingKey string `json:"ordering_key,omitempty"`
	// Acked is a reliable subscription's durable cumulative cursor: the
	// highest sequence number the consumer has acknowledged.
	Acked int64 `json:"acked_seq,omitempty"`
}

// Stats is a flat snapshot of deployment counters.
type Stats map[string]float64

// SidebarItem is one event displayed in a user's sidebar.
type SidebarItem struct {
	ID      int64     `json:"id"`
	Title   string    `json:"title"`
	Link    string    `json:"link"`
	FeedURL string    `json:"feed_url,omitempty"`
	Shown   time.Time `json:"shown"`
}

// PipelineStats summarizes one crawl/analysis pipeline round.
type PipelineStats struct {
	Crawled         int `json:"crawled"`
	CrawlErrors     int `json:"crawl_errors"`
	FeedsDiscovered int `json:"feeds_discovered"`
	Recommendations int `json:"recommendations"`
	FlaggedServers  int `json:"flagged_servers"`
}

// SyncPolicy selects when write-ahead-log appends reach stable storage on
// deployments opened with WithDataDir.
type SyncPolicy int

// Sync policies. The zero value is invalid so defaults stay explicit.
const (
	// SyncAsync (default) buffers appends and flushes on a short
	// background interval: a bounded loss window at near-zero append cost.
	SyncAsync SyncPolicy = iota + 1
	// SyncAlways fsyncs every append before acknowledging it.
	SyncAlways
	// SyncNever flushes only on snapshot and close; a crash loses the
	// buffered tail.
	SyncNever
)

// StorageInfo describes a deployment's persistence state, served by
// GET /v1/admin/storage.
type StorageInfo struct {
	// Backend is "file" for WithDataDir deployments, "memory" otherwise.
	Backend string `json:"backend"`
	// Dir is the data directory (file backend only).
	Dir string `json:"dir,omitempty"`
	// Sync is the active sync policy name (file backend only).
	Sync string `json:"sync,omitempty"`
	// Generation counts snapshot compactions over the directory lifetime.
	Generation uint64 `json:"generation"`
	// WALRecords and WALBytes size the current WAL segment.
	WALRecords int64 `json:"wal_records"`
	WALBytes   int64 `json:"wal_bytes"`
	// Snapshots counts snapshots taken since the deployment opened.
	Snapshots int64 `json:"snapshots"`
	// LastSnapshot is when the latest snapshot was written (zero if none).
	LastSnapshot time.Time `json:"last_snapshot,omitempty"`
	// RecoveredRecords is how many WAL records replayed at open.
	RecoveredRecords int64 `json:"recovered_records"`
	// TornTail reports the WAL ended in a torn record at open; recovery
	// stopped cleanly at the last intact record.
	TornTail bool `json:"torn_tail,omitempty"`
	// ShardCount is the number of engine shards behind the deployment
	// (1 unless WithShards raised it). On a sharded deployment the
	// top-level counters are sums across shards, Generation is the
	// highest shard generation, and TornTail is true if any shard's WAL
	// was torn.
	ShardCount int `json:"shard_count,omitempty"`
	// Shards breaks the storage state down per shard, in shard order.
	// Empty on single-shard deployments, where the top-level fields
	// already are the whole story. A cluster deployment (reefcluster)
	// reuses the field for its per-node breakdown, with Node set on each
	// entry.
	Shards []StorageInfo `json:"shards,omitempty"`
	// Node labels a per-node entry of a cluster deployment's breakdown
	// with that node's ID. Empty everywhere else.
	Node string `json:"node,omitempty"`
}

// Persister is the optional durability surface of a Deployment. Both
// built-in deployments and the client SDK implement it; the REST layer
// maps it to the /v1/admin endpoints and answers 501 for deployments
// that do not implement it.
type Persister interface {
	// StorageInfo reports the persistence backend's state.
	StorageInfo(ctx context.Context) (StorageInfo, error)
	// Snapshot forces a compacting snapshot: the full deployment state
	// becomes the new recovery baseline and the WAL restarts empty. On a
	// memory-backed deployment it is a no-op. It returns the storage
	// state after the compaction.
	Snapshot(ctx context.Context) (StorageInfo, error)
}

// Sharder is the optional sharding surface of a Deployment. Both
// built-in deployments implement it; the REST layer reports the count
// on GET /v1/healthz.
type Sharder interface {
	// ShardCount reports how many independent engine shards serve the
	// deployment (1 for an unsharded engine).
	ShardCount() int
}

// DeliveryPolicy selects what the deployment's broker does when a
// subscriber's delivery queue is full.
type DeliveryPolicy int

// Delivery policies. The zero value is invalid so defaults stay explicit.
const (
	// DropNewest discards the incoming event (default).
	DropNewest DeliveryPolicy = iota + 1
	// DropOldest evicts the oldest queued event to admit the new one.
	DropOldest
	// Block makes publishes wait until the subscriber drains or the
	// publish context is canceled.
	Block
)

// Deployment is the single surface both Reef deployments — the
// centralized "LAMP-style" server (Figure 1) and the distributed
// WAIF-peer pipeline (Figure 2) — expose to callers: binaries, examples,
// the REST layer and future backends all program against it. Every call
// takes a context; implementations honor cancellation on any path that
// can block. Implementations may offer additional concrete methods
// (pipeline driving, sidebar access), but anything a remote client can do
// goes through this interface.
type Deployment interface {
	// IngestClicks records a batch of attention data. It returns how many
	// clicks were ingested (the distributed deployment skips clicks whose
	// page is not in the local browser cache).
	IngestClicks(ctx context.Context, clicks []Click) (int, error)

	// PublishEvent injects one event into the pub-sub substrate and
	// returns the number of local deliveries.
	PublishEvent(ctx context.Context, ev Event) (int, error)

	// PublishBatch injects a batch of events, amortizing per-publish
	// overhead (lock acquisition, index probes, one HTTP round trip for
	// remote deployments) across the batch. It returns the total number
	// of local deliveries. The batch is validated as a whole before any
	// event is published.
	PublishBatch(ctx context.Context, evs []Event) (int, error)

	// Subscriptions lists the user's live subscriptions.
	Subscriptions(ctx context.Context, user string) ([]Subscription, error)
	// Subscribe places a feed subscription directly (bypassing the
	// recommendation flow). Options select the delivery tier and its
	// tuning; with none the subscription is best-effort. Impossible
	// option combinations are rejected with a *ConfigError before any
	// state changes.
	Subscribe(ctx context.Context, user, feedURL string, opts ...SubscribeOption) (Subscription, error)
	// Unsubscribe removes a feed subscription. It returns ErrNotFound if
	// the user has no subscription for the feed.
	Unsubscribe(ctx context.Context, user, feedURL string) error

	// Recommendations lists the user's pending recommendations without
	// consuming them; each carries an ID for the accept/reject calls.
	Recommendations(ctx context.Context, user string) ([]Recommendation, error)
	// AcceptRecommendation executes a pending recommendation.
	AcceptRecommendation(ctx context.Context, user, id string) error
	// RejectRecommendation discards a pending recommendation, feeding
	// negative signal back to the recommender.
	RejectRecommendation(ctx context.Context, user, id string) error

	// Stats snapshots the deployment's counters.
	Stats(ctx context.Context) (Stats, error)

	// Close releases the deployment's resources. Further calls return
	// ErrClosed.
	Close() error
}

// BatchCountPublisher is an optional Deployment extension: a batch
// publish that also reports per-event delivery counts. Stream servers
// coalesce pipelined publish frames into one batch call and need to ack
// each frame with its own delivered count; deployments that can
// attribute deliveries per event implement this, and callers fall back
// to per-frame PublishBatch when the deployment cannot.
type BatchCountPublisher interface {
	// PublishBatchCounts behaves like PublishBatch; counts must be nil
	// or have len(evs) entries, and counts[i] is incremented once per
	// delivery of evs[i].
	PublishBatchCounts(ctx context.Context, evs []Event, counts []int) (int, error)
}
