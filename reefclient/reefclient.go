// Package reefclient is the Go SDK for the reef REST surface
// (reefhttp). The Client itself satisfies reef.Deployment, so code
// written against the interface runs unchanged whether the deployment is
// in-process or behind a reefd server; error-envelope codes map back to
// the reef sentinel errors, keeping errors.Is checks working across the
// wire.
package reefclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"reef"
	"reef/reefhttp"
)

// APIError is a decoded error envelope from the server. It unwraps to
// the matching reef sentinel error.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Code is the machine-readable envelope code.
	Code string
	// Message is the human-readable explanation.
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("reefclient: %s (%s, HTTP %d)", e.Message, e.Code, e.StatusCode)
}

// Unwrap maps the envelope code to the reef sentinel, so
// errors.Is(err, reef.ErrNotFound) works against remote deployments.
func (e *APIError) Unwrap() error {
	switch e.Code {
	case reefhttp.CodeInvalidArgument:
		return reef.ErrInvalidArgument
	case reefhttp.CodeNotFound:
		return reef.ErrNotFound
	case reefhttp.CodeUnavailable:
		return reef.ErrClosed
	case reefhttp.CodeUnsupported:
		return reef.ErrUnsupported
	default:
		return nil
	}
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying *http.Client.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// Client speaks the /v1 REST surface. Safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

var (
	_ reef.Deployment = (*Client)(nil)
	_ reef.Persister  = (*Client)(nil)
)

// New builds a client for a server root, e.g. "http://127.0.0.1:7070".
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		hc:   http.DefaultClient,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do sends one request with a JSON body (nil for none) and decodes the
// response into out (nil to discard). Non-2xx responses become *APIError.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("reefclient: encoding request: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("reefclient: building request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("reefclient: %s %s: %w", method, path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("reefclient: reading response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var envelope reefhttp.ErrorBody
		if err := json.Unmarshal(data, &envelope); err != nil || envelope.Error.Code == "" {
			return &APIError{StatusCode: resp.StatusCode, Code: reefhttp.CodeInternal,
				Message: strings.TrimSpace(string(data))}
		}
		return &APIError{StatusCode: resp.StatusCode, Code: envelope.Error.Code,
			Message: envelope.Error.Message}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("reefclient: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// IngestClicks implements reef.Deployment over POST /v1/clicks.
func (c *Client) IngestClicks(ctx context.Context, clicks []reef.Click) (int, error) {
	var out reefhttp.ClicksResponse
	err := c.do(ctx, http.MethodPost, "/v1/clicks", reefhttp.ClicksRequest{Clicks: clicks}, &out)
	if err != nil {
		return 0, err
	}
	return out.Accepted, nil
}

// PublishEvent implements reef.Deployment over POST /v1/events.
func (c *Client) PublishEvent(ctx context.Context, ev reef.Event) (int, error) {
	var out reefhttp.EventResponse
	if err := c.do(ctx, http.MethodPost, "/v1/events", ev, &out); err != nil {
		return 0, err
	}
	return out.Delivered, nil
}

// PublishBatch implements reef.Deployment over POST /v1/events:batch,
// amortizing one HTTP round trip over the whole batch.
func (c *Client) PublishBatch(ctx context.Context, evs []reef.Event) (int, error) {
	var out reefhttp.EventResponse
	err := c.do(ctx, http.MethodPost, "/v1/events:batch", reefhttp.EventsBatchRequest{Events: evs}, &out)
	if err != nil {
		return 0, err
	}
	return out.Delivered, nil
}

// Subscriptions implements reef.Deployment over GET /v1/users/{u}/subscriptions.
func (c *Client) Subscriptions(ctx context.Context, user string) ([]reef.Subscription, error) {
	var out reefhttp.SubscriptionsResponse
	err := c.do(ctx, http.MethodGet, "/v1/users/"+url.PathEscape(user)+"/subscriptions", nil, &out)
	if err != nil {
		return nil, err
	}
	return out.Subscriptions, nil
}

// Subscribe implements reef.Deployment over PUT /v1/users/{u}/subscriptions.
func (c *Client) Subscribe(ctx context.Context, user, feedURL string) (reef.Subscription, error) {
	var out reef.Subscription
	err := c.do(ctx, http.MethodPut, "/v1/users/"+url.PathEscape(user)+"/subscriptions",
		reefhttp.SubscribeRequest{FeedURL: feedURL}, &out)
	return out, err
}

// Unsubscribe implements reef.Deployment over DELETE /v1/users/{u}/subscriptions.
func (c *Client) Unsubscribe(ctx context.Context, user, feedURL string) error {
	return c.do(ctx, http.MethodDelete,
		"/v1/users/"+url.PathEscape(user)+"/subscriptions?feed="+url.QueryEscape(feedURL), nil, nil)
}

// Recommendations implements reef.Deployment over GET /v1/recommendations.
func (c *Client) Recommendations(ctx context.Context, user string) ([]reef.Recommendation, error) {
	var out reefhttp.RecommendationsResponse
	err := c.do(ctx, http.MethodGet, "/v1/recommendations?user="+url.QueryEscape(user), nil, &out)
	if err != nil {
		return nil, err
	}
	return out.Recommendations, nil
}

// AcceptRecommendation implements reef.Deployment over POST
// /v1/recommendations/{id}/accept.
func (c *Client) AcceptRecommendation(ctx context.Context, user, id string) error {
	return c.do(ctx, http.MethodPost, "/v1/recommendations/"+url.PathEscape(id)+"/accept",
		reefhttp.DecisionRequest{User: user}, nil)
}

// RejectRecommendation implements reef.Deployment over POST
// /v1/recommendations/{id}/reject.
func (c *Client) RejectRecommendation(ctx context.Context, user, id string) error {
	return c.do(ctx, http.MethodPost, "/v1/recommendations/"+url.PathEscape(id)+"/reject",
		reefhttp.DecisionRequest{User: user}, nil)
}

// Stats implements reef.Deployment over GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (reef.Stats, error) {
	var out reefhttp.StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return out.Stats, nil
}

// Health probes GET /v1/healthz: liveness plus the server deployment's
// shard count and storage backend. A non-2xx answer (including the 503
// a closed deployment produces) comes back as *APIError, so errors.Is
// against the reef sentinels works on probe failures too.
func (c *Client) Health(ctx context.Context) (reefhttp.HealthResponse, error) {
	var out reefhttp.HealthResponse
	if err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &out); err != nil {
		return reefhttp.HealthResponse{}, err
	}
	return out, nil
}

// StorageInfo implements reef.Persister over GET /v1/admin/storage. A
// server whose deployment has no persistence surface answers with the
// "unsupported" envelope, surfaced as reef.ErrUnsupported.
func (c *Client) StorageInfo(ctx context.Context) (reef.StorageInfo, error) {
	var out reefhttp.StorageResponse
	if err := c.do(ctx, http.MethodGet, "/v1/admin/storage", nil, &out); err != nil {
		return reef.StorageInfo{}, err
	}
	return out.Storage, nil
}

// Snapshot implements reef.Persister over POST /v1/admin/snapshot,
// forcing a compacting snapshot on the server's deployment.
func (c *Client) Snapshot(ctx context.Context) (reef.StorageInfo, error) {
	var out reefhttp.StorageResponse
	if err := c.do(ctx, http.MethodPost, "/v1/admin/snapshot", nil, &out); err != nil {
		return reef.StorageInfo{}, err
	}
	return out.Storage, nil
}

// Close implements reef.Deployment; the client holds no server-side
// resources.
func (c *Client) Close() error { return nil }
