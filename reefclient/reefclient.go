// Package reefclient is the Go SDK for the reef REST surface
// (reefhttp). The Client itself satisfies reef.Deployment, so code
// written against the interface runs unchanged whether the deployment is
// in-process or behind a reefd server; error-envelope codes map back to
// the reef sentinel errors, keeping errors.Is checks working across the
// wire.
package reefclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"reef/internal/replication"
	"reef/internal/trace"

	"reef"
	"reef/reefhttp"
)

// APIError is a decoded error envelope from the server. It unwraps to
// the matching reef sentinel error.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Code is the machine-readable envelope code.
	Code string
	// Message is the human-readable explanation.
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("reefclient: %s (%s, HTTP %d)", e.Message, e.Code, e.StatusCode)
}

// Unwrap maps the envelope code to the reef sentinel, so
// errors.Is(err, reef.ErrNotFound) works against remote deployments.
func (e *APIError) Unwrap() error {
	switch e.Code {
	case reefhttp.CodeInvalidArgument:
		return reef.ErrInvalidArgument
	case reefhttp.CodeNotFound:
		return reef.ErrNotFound
	case reefhttp.CodeUnavailable:
		return reef.ErrClosed
	case reefhttp.CodeUnsupported:
		return reef.ErrUnsupported
	default:
		return nil
	}
}

// Transport is a publish data plane the client can carry events over
// instead of REST. The REST surface stays the control plane for every
// other verb; a Transport moves only the hot, high-volume publish path
// (reefstream.Client satisfies this). Close releases the transport's
// connection; the Client's own Close calls it.
type Transport interface {
	PublishEvent(ctx context.Context, ev reef.Event) (int, error)
	PublishBatch(ctx context.Context, evs []reef.Event) (int, error)
	Close() error
}

// ConsumerTransport is a Transport that also carries the reliable
// consume path — server-pushed fetches and pipelined acks
// (reefstream.Client satisfies this). When the configured Transport
// implements it, FetchEvents and Ack ride the stream; REST remains the
// fallback when the stream cannot serve a call (connection failure, or
// a server that predates the consume plane).
type ConsumerTransport interface {
	Transport
	FetchEvents(ctx context.Context, user, subID string, max int) ([]reef.DeliveredEvent, error)
	Ack(ctx context.Context, user, subID string, seq int64, nack bool) error
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying *http.Client.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithTransport routes PublishEvent/PublishBatch — and, when the
// transport is a ConsumerTransport, FetchEvents/Ack — over a streaming
// data plane while every other call stays on REST. The client owns the
// transport: Close closes it.
func WithTransport(t Transport) Option {
	return func(c *Client) {
		c.transport = t
		if ct, ok := t.(ConsumerTransport); ok {
			c.consumer = ct
		}
	}
}

// WithTimeout bounds each request attempt with its own deadline (on top
// of whatever deadline the caller's context carries). Each retry
// attempt gets a fresh budget, so a request's worst case is
// attempts × timeout plus backoff. Zero (the default) adds no deadline.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// WithRetry enables bounded retry with jittered exponential backoff for
// failures that are safe or idempotent-enough to repeat: connection
// errors (the request likely never reached a handler) and 502/503
// responses (a proxy without a backend, or a deployment that is
// starting, draining or closed — exactly the transients a cluster
// forwarding path sees around a node restart). retries is how many
// extra attempts follow the first (so retries=2 means at most 3 calls);
// backoff is the first delay, doubled each attempt, with a uniform
// jitter of up to one backoff unit added (zero backoff defaults to
// 50ms). The default — no WithRetry — keeps the old single-attempt
// behavior. 4xx responses and context cancellation never retry.
func WithRetry(retries int, backoff time.Duration) Option {
	return func(c *Client) {
		if retries < 0 {
			retries = 0
		}
		if backoff <= 0 {
			backoff = 50 * time.Millisecond
		}
		c.retries = retries
		c.backoff = backoff
	}
}

// Client speaks the /v1 REST surface. Safe for concurrent use.
type Client struct {
	base      string
	hc        *http.Client
	transport Transport
	consumer  ConsumerTransport
	timeout   time.Duration
	retries   int
	backoff   time.Duration

	// restOnlyConsume latches when the stream answers a consume call
	// with "unsupported" (a server predating the consume plane): no
	// point re-asking per call.
	restOnlyConsume atomic.Bool
}

var (
	_ reef.Deployment        = (*Client)(nil)
	_ reef.Persister         = (*Client)(nil)
	_ reef.ReliableDeliverer = (*Client)(nil)
)

// defaultHTTPClient replaces http.DefaultClient as the client's
// default. http.DefaultTransport caps idle connections at 2 per host
// (MaxIdleConnsPerHost), so any concurrency beyond 2 against one server
// — a cluster fan-out, a parallel publisher — closes and redials TCP
// connections on nearly every call. This pool keeps enough idle
// connections around that steady traffic reuses them.
var defaultHTTPClient = &http.Client{
	Transport: &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
		ForceAttemptHTTP2:   true,
	},
}

// New builds a client for a server root, e.g. "http://127.0.0.1:7070".
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		hc:   defaultHTTPClient,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do sends one request with a JSON body (nil for none) and decodes the
// response into out (nil to discard). Non-2xx responses become *APIError.
// With WithRetry, connection errors and 502/503 answers repeat up to the
// retry budget with jittered exponential backoff; the body is marshaled
// once and replayed per attempt.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var data []byte
	if in != nil {
		var err error
		if data, err = json.Marshal(in); err != nil {
			return fmt.Errorf("reefclient: encoding request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, data, in != nil, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if attempt >= c.retries || ctx.Err() != nil || !c.retryable(err) {
			return lastErr
		}
		// Exponential backoff with up to one backoff unit of jitter, so
		// concurrent callers hammering a recovering node spread out.
		delay := c.backoff<<attempt + time.Duration(rand.Int63n(int64(c.backoff)+1))
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return lastErr
		case <-timer.C:
		}
	}
}

// terminalError marks a failure that happened AFTER the server may
// already have processed the request — a 2xx arrived but its body
// could not be read or decoded. Retrying would re-send a mutation the
// server likely applied, so these are never retried.
type terminalError struct{ err error }

func (e *terminalError) Error() string { return e.err.Error() }
func (e *terminalError) Unwrap() error { return e.err }

// retryable reports whether an attempt's failure is worth repeating:
// transport-level errors (connection refused, reset — the request
// likely never reached a handler) and 502/503 envelopes. Cancellation,
// post-2xx body failures (see terminalError) and every other HTTP
// status are final; a DeadlineExceeded can only be the per-attempt
// timeout here (the caller already checked the parent context), so
// with WithTimeout armed it retries with a fresh budget.
func (c *Client) retryable(err error) bool {
	var term *terminalError
	if errors.As(err, &term) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode == http.StatusBadGateway ||
			apiErr.StatusCode == http.StatusServiceUnavailable
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return c.timeout > 0
	}
	return true
}

// doOnce performs a single attempt, applying the per-attempt timeout.
func (c *Client) doOnce(ctx context.Context, method, path string, data []byte, hasBody bool, out any) error {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	var body io.Reader
	if hasBody {
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("reefclient: building request: %w", err)
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	if id, ok := trace.FromContext(ctx); ok {
		req.Header.Set(trace.Header, id.String())
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("reefclient: %s %s: %w", method, path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	respData, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if resp.StatusCode >= 200 && resp.StatusCode <= 299 {
		// Past this point the server processed the request; failures are
		// terminal (never retried) so a mutation is not re-sent.
		if err != nil {
			return &terminalError{fmt.Errorf("reefclient: reading response: %w", err)}
		}
		if out == nil {
			return nil
		}
		if err := json.Unmarshal(respData, out); err != nil {
			return &terminalError{fmt.Errorf("reefclient: decoding %s %s response: %w", method, path, err)}
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("reefclient: reading response: %w", err)
	}
	var envelope reefhttp.ErrorBody
	if err := json.Unmarshal(respData, &envelope); err != nil || envelope.Error.Code == "" {
		return &APIError{StatusCode: resp.StatusCode, Code: reefhttp.CodeInternal,
			Message: strings.TrimSpace(string(respData))}
	}
	return &APIError{StatusCode: resp.StatusCode, Code: envelope.Error.Code,
		Message: envelope.Error.Message}
}

// IngestClicks implements reef.Deployment over POST /v1/clicks.
func (c *Client) IngestClicks(ctx context.Context, clicks []reef.Click) (int, error) {
	var out reefhttp.ClicksResponse
	err := c.do(ctx, http.MethodPost, "/v1/clicks", reefhttp.ClicksRequest{Clicks: clicks}, &out)
	if err != nil {
		return 0, err
	}
	return out.Accepted, nil
}

// PublishEvent implements reef.Deployment over POST /v1/events, or over
// the streaming data plane when WithTransport is set.
func (c *Client) PublishEvent(ctx context.Context, ev reef.Event) (int, error) {
	if c.transport != nil {
		return c.transport.PublishEvent(ctx, ev)
	}
	var out reefhttp.EventResponse
	if err := c.do(ctx, http.MethodPost, "/v1/events", ev, &out); err != nil {
		return 0, err
	}
	return out.Delivered, nil
}

// PublishBatch implements reef.Deployment over POST /v1/events:batch,
// amortizing one HTTP round trip over the whole batch — or over the
// streaming data plane when WithTransport is set.
func (c *Client) PublishBatch(ctx context.Context, evs []reef.Event) (int, error) {
	if c.transport != nil {
		return c.transport.PublishBatch(ctx, evs)
	}
	var out reefhttp.EventResponse
	err := c.do(ctx, http.MethodPost, "/v1/events:batch", reefhttp.EventsBatchRequest{Events: evs}, &out)
	if err != nil {
		return 0, err
	}
	return out.Delivered, nil
}

// Subscriptions implements reef.Deployment over GET /v1/users/{u}/subscriptions.
func (c *Client) Subscriptions(ctx context.Context, user string) ([]reef.Subscription, error) {
	var out reefhttp.SubscriptionsResponse
	err := c.do(ctx, http.MethodGet, "/v1/users/"+url.PathEscape(user)+"/subscriptions", nil, &out)
	if err != nil {
		return nil, err
	}
	return out.Subscriptions, nil
}

// Subscribe implements reef.Deployment over PUT /v1/users/{u}/subscriptions.
// Delivery options are validated locally first (so a bad combination
// fails with the same rich *ConfigError an in-process deployment
// produces, without a round trip), then serialized onto the wire.
func (c *Client) Subscribe(ctx context.Context, user, feedURL string, opts ...reef.SubscribeOption) (reef.Subscription, error) {
	sc, err := reef.NewSubscribeConfig(opts...)
	if err != nil {
		return reef.Subscription{}, err
	}
	body := reefhttp.SubscribeRequest{FeedURL: feedURL}
	if sc.Guarantee == reef.AtLeastOnce {
		body.Delivery = &reefhttp.DeliveryConfig{
			Guarantee:    sc.Guarantee.String(),
			OrderingKey:  sc.OrderingKey,
			AckTimeoutMS: sc.AckTimeout.Milliseconds(),
			MaxAttempts:  sc.MaxAttempts,
		}
	}
	var out reef.Subscription
	err = c.do(ctx, http.MethodPut, "/v1/users/"+url.PathEscape(user)+"/subscriptions", body, &out)
	return out, err
}

// FetchEvents implements reef.ReliableDeliverer over GET
// /v1/subscriptions/{id}/events.
func (c *Client) FetchEvents(ctx context.Context, user, subID string, max int) ([]reef.DeliveredEvent, error) {
	if t := c.consumer; t != nil && !c.restOnlyConsume.Load() {
		evs, err := t.FetchEvents(ctx, user, subID, max)
		if err == nil {
			return evs, nil
		}
		if verdict := c.consumeErr(ctx, err); verdict != nil {
			return nil, verdict
		}
	}
	path := "/v1/subscriptions/" + url.PathEscape(subID) + "/events?user=" + url.QueryEscape(user)
	if max > 0 {
		path += "&max=" + strconv.Itoa(max)
	}
	var out reefhttp.DeliveredResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out.Events, nil
}

// Ack implements reef.ReliableDeliverer over POST
// /v1/subscriptions/{id}/ack (or the stream when the transport carries
// the consume plane). Acks are cumulative and idempotent on the server,
// so WithRetry — and the stream-to-REST fallback — may safely repeat
// one.
func (c *Client) Ack(ctx context.Context, user, subID string, seq int64, nack bool) error {
	if t := c.consumer; t != nil && !c.restOnlyConsume.Load() {
		err := t.Ack(ctx, user, subID, seq, nack)
		if err == nil {
			return nil
		}
		if verdict := c.consumeErr(ctx, err); verdict != nil {
			return verdict
		}
	}
	return c.do(ctx, http.MethodPost, "/v1/subscriptions/"+url.PathEscape(subID)+"/ack",
		reefhttp.AckRequest{User: user, Seq: seq, Nack: nack}, nil)
}

// consumeErr classifies a stream-consume failure. A non-nil return is
// the caller's final verdict; nil means "absorb it and fall back to
// REST for this call". Server verdicts (bad argument, unknown
// subscription, draining) and caller timeouts surface; an unsupported
// verdict latches the REST fallback permanently; anything else is a
// connection-level failure the REST path can ride out.
func (c *Client) consumeErr(ctx context.Context, err error) error {
	if errors.Is(err, reef.ErrUnsupported) {
		c.restOnlyConsume.Store(true)
		return nil
	}
	if ctx.Err() != nil || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, reef.ErrInvalidArgument) || errors.Is(err, reef.ErrNotFound) ||
		errors.Is(err, reef.ErrClosed) {
		return err
	}
	return nil
}

// DeadLetters implements reef.ReliableDeliverer over GET
// /v1/admin/deadletter. An empty subID aggregates every subscription of
// the user.
func (c *Client) DeadLetters(ctx context.Context, user, subID string) ([]reef.DeadLetter, error) {
	path := "/v1/admin/deadletter?user=" + url.QueryEscape(user)
	if subID != "" {
		path += "&subscription=" + url.QueryEscape(subID)
	}
	var out reefhttp.DeadLetterResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out.DeadLetters, nil
}

// DrainDeadLetters implements reef.ReliableDeliverer over POST
// /v1/admin/deadletter, removing what it returns.
func (c *Client) DrainDeadLetters(ctx context.Context, user, subID string) ([]reef.DeadLetter, error) {
	var out reefhttp.DeadLetterResponse
	err := c.do(ctx, http.MethodPost, "/v1/admin/deadletter",
		reefhttp.DeadLetterDrainRequest{User: user, Subscription: subID}, &out)
	if err != nil {
		return nil, err
	}
	return out.DeadLetters, nil
}

// Unsubscribe implements reef.Deployment over DELETE /v1/users/{u}/subscriptions.
func (c *Client) Unsubscribe(ctx context.Context, user, feedURL string) error {
	return c.do(ctx, http.MethodDelete,
		"/v1/users/"+url.PathEscape(user)+"/subscriptions?feed="+url.QueryEscape(feedURL), nil, nil)
}

// Recommendations implements reef.Deployment over GET /v1/recommendations.
func (c *Client) Recommendations(ctx context.Context, user string) ([]reef.Recommendation, error) {
	var out reefhttp.RecommendationsResponse
	err := c.do(ctx, http.MethodGet, "/v1/recommendations?user="+url.QueryEscape(user), nil, &out)
	if err != nil {
		return nil, err
	}
	return out.Recommendations, nil
}

// AcceptRecommendation implements reef.Deployment over POST
// /v1/recommendations/{id}/accept.
func (c *Client) AcceptRecommendation(ctx context.Context, user, id string) error {
	return c.do(ctx, http.MethodPost, "/v1/recommendations/"+url.PathEscape(id)+"/accept",
		reefhttp.DecisionRequest{User: user}, nil)
}

// RejectRecommendation implements reef.Deployment over POST
// /v1/recommendations/{id}/reject.
func (c *Client) RejectRecommendation(ctx context.Context, user, id string) error {
	return c.do(ctx, http.MethodPost, "/v1/recommendations/"+url.PathEscape(id)+"/reject",
		reefhttp.DecisionRequest{User: user}, nil)
}

// Stats implements reef.Deployment over GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (reef.Stats, error) {
	var out reefhttp.StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return out.Stats, nil
}

// Health probes GET /v1/healthz: liveness plus the server deployment's
// shard count and storage backend. A non-2xx answer (including the 503
// a closed deployment produces) comes back as *APIError, so errors.Is
// against the reef sentinels works on probe failures too.
func (c *Client) Health(ctx context.Context) (reefhttp.HealthResponse, error) {
	var out reefhttp.HealthResponse
	if err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &out); err != nil {
		return reefhttp.HealthResponse{}, err
	}
	return out, nil
}

// Ready probes GET /v1/readyz. Readiness is deliberately not routed
// through do: the 503 a starting or draining node answers carries a
// ReadyResponse body, not the error envelope, and the prober needs that
// status string. On a non-200 the decoded body (when present) comes
// back alongside the *APIError, so callers can distinguish a draining
// node (resp.Status "draining", err non-nil) from an unreachable one
// (resp zero, err non-nil). Ready never retries, whatever WithRetry
// says — a probe wants the answer now.
func (c *Client) Ready(ctx context.Context) (reefhttp.ReadyResponse, error) {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/readyz", nil)
	if err != nil {
		return reefhttp.ReadyResponse{}, fmt.Errorf("reefclient: building request: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return reefhttp.ReadyResponse{}, fmt.Errorf("reefclient: GET /v1/readyz: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return reefhttp.ReadyResponse{}, fmt.Errorf("reefclient: reading response: %w", err)
	}
	var out reefhttp.ReadyResponse
	_ = json.Unmarshal(data, &out)
	if resp.StatusCode == http.StatusOK {
		if out.Status == "" {
			return out, fmt.Errorf("reefclient: decoding /v1/readyz response %q", data)
		}
		return out, nil
	}
	// A gated 503 carries the ReadyResponse shape; anything else (an old
	// server 404ing the route, a proxy error page) may carry the envelope.
	apiErr := &APIError{StatusCode: resp.StatusCode, Code: reefhttp.CodeUnavailable,
		Message: "node not ready: " + strings.TrimSpace(string(data))}
	var envelope reefhttp.ErrorBody
	if json.Unmarshal(data, &envelope) == nil && envelope.Error.Code != "" {
		apiErr.Code, apiErr.Message = envelope.Error.Code, envelope.Error.Message
	}
	return out, apiErr
}

// StorageInfo implements reef.Persister over GET /v1/admin/storage. A
// server whose deployment has no persistence surface answers with the
// "unsupported" envelope, surfaced as reef.ErrUnsupported.
func (c *Client) StorageInfo(ctx context.Context) (reef.StorageInfo, error) {
	var out reefhttp.StorageResponse
	if err := c.do(ctx, http.MethodGet, "/v1/admin/storage", nil, &out); err != nil {
		return reef.StorageInfo{}, err
	}
	return out.Storage, nil
}

// Snapshot implements reef.Persister over POST /v1/admin/snapshot,
// forcing a compacting snapshot on the server's deployment.
func (c *Client) Snapshot(ctx context.Context) (reef.StorageInfo, error) {
	var out reefhttp.StorageResponse
	if err := c.do(ctx, http.MethodPost, "/v1/admin/snapshot", nil, &out); err != nil {
		return reef.StorageInfo{}, err
	}
	return out.Storage, nil
}

// ReplicationStatus fetches GET /v1/admin/replication: the node's
// outbound stream positions (shipped watermark, pending backlog, lag
// p99, resyncs) and inbound source positions. A server running without
// replication answers the "unsupported" envelope, surfaced as
// reef.ErrUnsupported.
func (c *Client) ReplicationStatus(ctx context.Context) (replication.Status, error) {
	var out reefhttp.ReplicationStatusResponse
	if err := c.do(ctx, http.MethodGet, "/v1/admin/replication", nil, &out); err != nil {
		return replication.Status{}, err
	}
	return out.Replication, nil
}

// Metrics fetches GET /v1/metrics: the server's Prometheus text
// exposition, verbatim. Callers forwarding it to a scraper should use
// reefhttp.ContentTypeMetrics as the Content-Type.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/metrics", nil)
	if err != nil {
		return "", fmt.Errorf("reefclient: building request: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", fmt.Errorf("reefclient: GET /v1/metrics: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return "", fmt.Errorf("reefclient: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{StatusCode: resp.StatusCode, Code: reefhttp.CodeInternal,
			Message: strings.TrimSpace(string(data))}
	}
	return string(data), nil
}

// TraceDump fetches GET /v1/admin/trace: the server's span ring, oldest
// first. A non-empty traceID (32 hex characters, as echoed in the
// X-Reef-Trace response header) filters to that trace; limit > 0 keeps
// the newest limit spans.
func (c *Client) TraceDump(ctx context.Context, traceID string, limit int) (reefhttp.TraceResponse, error) {
	path := "/v1/admin/trace"
	sep := "?"
	if traceID != "" {
		path += sep + "trace=" + url.QueryEscape(traceID)
		sep = "&"
	}
	if limit > 0 {
		path += sep + "limit=" + strconv.Itoa(limit)
	}
	var out reefhttp.TraceResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return reefhttp.TraceResponse{}, err
	}
	return out, nil
}

// Close implements reef.Deployment; the client holds no server-side
// resources, but a WithTransport data plane owns a connection, which is
// closed here.
func (c *Client) Close() error {
	if c.transport != nil {
		return c.transport.Close()
	}
	return nil
}
