package reefclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"reef"
	"reef/internal/durable"
	"reef/internal/replication"
	"reef/internal/topics"
	"reef/internal/websim"
	"reef/reefhttp"
)

var t0 = time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)

// newServer stands up a real centralized deployment behind the REST
// surface and returns a client for it.
func newServer(t *testing.T, seed int64) (*Client, *reef.Centralized, *websim.Web) {
	t.Helper()
	model := topics.NewModel(seed, 6, 25, 30)
	wcfg := websim.DefaultConfig(seed, t0)
	wcfg.NumContentServers = 30
	wcfg.NumAdServers = 10
	wcfg.NumSpamServers = 2
	wcfg.NumMultimediaServers = 1
	wcfg.FeedProb = 0.6
	web := websim.Generate(wcfg, model)
	dep, err := reef.NewCentralized(reef.WithFetcher(web), reef.WithPollInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dep.Close() })
	ts := httptest.NewServer(reefhttp.NewHandler(dep, nil))
	t.Cleanup(ts.Close)
	return New(ts.URL, WithHTTPClient(ts.Client())), dep, web
}

// TestClientStorageRoundTrip exercises the Persister surface through the
// SDK against a file-backed deployment: storage info reports the backend,
// a forced snapshot advances the generation, and a memory-backed server
// answers the same calls without error.
func TestClientStorageRoundTrip(t *testing.T) {
	ctx := context.Background()
	model := topics.NewModel(31, 4, 10, 12)
	wcfg := websim.DefaultConfig(31, t0)
	wcfg.NumContentServers = 6
	web := websim.Generate(wcfg, model)
	dep, err := reef.NewCentralized(
		reef.WithFetcher(web),
		reef.WithDataDir(t.TempDir()),
		reef.WithSyncPolicy(reef.SyncAlways),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dep.Close() })
	ts := httptest.NewServer(reefhttp.NewHandler(dep, nil))
	t.Cleanup(ts.Close)
	cli := New(ts.URL, WithHTTPClient(ts.Client()))

	info, err := cli.StorageInfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Backend != "file" || info.Sync != "always" {
		t.Fatalf("StorageInfo = %+v, want file backend with always sync", info)
	}
	if _, err := cli.IngestClicks(ctx, []reef.Click{{User: "u", URL: "http://a.test/p", At: t0}}); err != nil {
		t.Fatal(err)
	}
	after, err := cli.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.Generation != info.Generation+1 || after.Snapshots == 0 {
		t.Fatalf("Snapshot = %+v, want generation %d", after, info.Generation+1)
	}
	if after.WALRecords != 0 {
		t.Errorf("WAL records after snapshot = %d, want 0", after.WALRecords)
	}

	// The same calls against a memory-backed deployment stay usable.
	memCli, _, _ := newServer(t, 32)
	memInfo, err := memCli.StorageInfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if memInfo.Backend != "memory" {
		t.Errorf("memory deployment backend = %q", memInfo.Backend)
	}
}

// feedHostPage returns a page URL on a content server that hosts feeds.
func feedHostPage(t *testing.T, web *websim.Web) (string, *websim.Server) {
	t.Helper()
	for _, s := range web.Servers(websim.KindContent) {
		if len(s.Feeds) == 0 {
			continue
		}
		for _, p := range s.Pages {
			return s.URL(p.Path), s
		}
	}
	t.Fatal("no feed-hosting content server")
	return "", nil
}

// serverFeedURL returns one feed URL hosted by the server.
func serverFeedURL(srv *websim.Server) string {
	for path := range srv.Feeds {
		return srv.URL(path)
	}
	return ""
}

// TestClientRoundTrip drives the acceptance flow end to end over the
// wire: clicks → pipeline → recommendations → accept → subscription.
func TestClientRoundTrip(t *testing.T) {
	ctx := context.Background()
	client, dep, web := newServer(t, 1)
	pageURL, _ := feedHostPage(t, web)

	n, err := client.IngestClicks(ctx, []reef.Click{{User: "u1", URL: pageURL, At: t0}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("accepted = %d", n)
	}

	dep.RunPipeline(t0.Add(time.Hour))

	recs, err := client.Recommendations(ctx, "u1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no recommendations over HTTP")
	}
	rec := recs[0]
	if rec.Kind != reef.KindSubscribeFeed || rec.FeedURL == "" || rec.Filter == "" || rec.ID == "" {
		t.Fatalf("rec = %+v", rec)
	}

	// Listing again does not consume: the same IDs come back.
	again, err := client.Recommendations(ctx, "u1")
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(recs) || again[0].ID != rec.ID {
		t.Fatalf("recommendations not stable: %+v vs %+v", again, recs)
	}

	if err := client.AcceptRecommendation(ctx, "u1", rec.ID); err != nil {
		t.Fatal(err)
	}
	subs, err := client.Subscriptions(ctx, "u1")
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || subs[0].FeedURL != rec.FeedURL {
		t.Fatalf("subscriptions = %+v", subs)
	}

	// Accepting again: the recommendation is gone.
	err = client.AcceptRecommendation(ctx, "u1", rec.ID)
	if !errors.Is(err, reef.ErrNotFound) {
		t.Fatalf("second accept = %v, want ErrNotFound", err)
	}

	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats["clicks_stored"] != 1 {
		t.Errorf("clicks_stored = %v", stats["clicks_stored"])
	}
}

func TestClientSubscriptionCRUD(t *testing.T) {
	ctx := context.Background()
	client, _, web := newServer(t, 2)
	_, srv := feedHostPage(t, web)
	feedURL := serverFeedURL(srv)

	sub, err := client.Subscribe(ctx, "u2", feedURL)
	if err != nil {
		t.Fatal(err)
	}
	if sub.FeedURL != feedURL || sub.Kind != reef.KindSubscribeFeed {
		t.Fatalf("sub = %+v", sub)
	}
	subs, err := client.Subscriptions(ctx, "u2")
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || subs[0].ID != feedURL {
		t.Fatalf("subs = %+v", subs)
	}
	if err := client.Unsubscribe(ctx, "u2", feedURL); err != nil {
		t.Fatal(err)
	}
	subs, err = client.Subscriptions(ctx, "u2")
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 0 {
		t.Fatalf("subs after unsubscribe = %+v", subs)
	}
	// Deleting again is a 404 that maps back to the sentinel.
	err = client.Unsubscribe(ctx, "u2", feedURL)
	if !errors.Is(err, reef.ErrNotFound) {
		t.Fatalf("double unsubscribe = %v, want ErrNotFound", err)
	}
}

func TestClientPublishEventDelivery(t *testing.T) {
	ctx := context.Background()
	client, _, web := newServer(t, 3)
	_, srv := feedHostPage(t, web)
	feedURL := serverFeedURL(srv)

	if _, err := client.Subscribe(ctx, "u3", feedURL); err != nil {
		t.Fatal(err)
	}
	delivered, err := client.PublishEvent(ctx, reef.Event{
		Source: "test",
		Attrs: map[string]string{
			"type":  "feed-item",
			"feed":  feedURL,
			"title": "hello",
			"link":  srv.URL("/story/1.html"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d", delivered)
	}
	// No attributes → invalid_argument over the wire.
	_, err = client.PublishEvent(ctx, reef.Event{Source: "test"})
	if !errors.Is(err, reef.ErrInvalidArgument) {
		t.Fatalf("empty event = %v, want ErrInvalidArgument", err)
	}
}

func TestClientPublishBatch(t *testing.T) {
	ctx := context.Background()
	client, _, web := newServer(t, 9)
	_, srv := feedHostPage(t, web)
	feedURL := serverFeedURL(srv)

	if _, err := client.Subscribe(ctx, "u9", feedURL); err != nil {
		t.Fatal(err)
	}
	item := func() reef.Event {
		return reef.Event{
			Source: "test",
			Attrs: map[string]string{
				"type": "feed-item",
				"feed": feedURL,
				"link": srv.URL("/story/batch.html"),
			},
		}
	}
	delivered, err := client.PublishBatch(ctx, []reef.Event{item(), item(), item()})
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 3 {
		t.Fatalf("batch delivered = %d, want 3", delivered)
	}

	// An empty batch is a no-op over the wire, like in-process.
	if n, err := client.PublishBatch(ctx, nil); err != nil || n != 0 {
		t.Fatalf("empty batch = (%d, %v), want (0, nil)", n, err)
	}

	// One bad event rejects the whole batch before anything publishes.
	_, err = client.PublishBatch(ctx, []reef.Event{item(), {Source: "test"}})
	if !errors.Is(err, reef.ErrInvalidArgument) {
		t.Fatalf("bad batch = %v, want ErrInvalidArgument", err)
	}
}

func TestClientRejectRecommendation(t *testing.T) {
	ctx := context.Background()
	client, dep, web := newServer(t, 4)
	pageURL, _ := feedHostPage(t, web)
	if _, err := client.IngestClicks(ctx, []reef.Click{{User: "u4", URL: pageURL, At: t0}}); err != nil {
		t.Fatal(err)
	}
	dep.RunPipeline(t0.Add(time.Hour))
	recs, err := client.Recommendations(ctx, "u4")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	if err := client.RejectRecommendation(ctx, "u4", recs[0].ID); err != nil {
		t.Fatal(err)
	}
	subs, err := client.Subscriptions(ctx, "u4")
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 0 {
		t.Fatalf("rejected recommendation still placed a subscription: %+v", subs)
	}
	recs, err = client.Recommendations(ctx, "u4")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.ID == "r1" {
			t.Fatalf("rejected recommendation still pending: %+v", r)
		}
	}
}

// TestErrorEnvelope checks the wire shape of errors: JSON envelope,
// Content-Type, status codes, Allow header on 405s.
func TestErrorEnvelope(t *testing.T) {
	client, _, _ := newServer(t, 5)
	hc := client.hc

	checkEnvelope := func(t *testing.T, resp *http.Response, wantStatus int, wantCode string) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("status = %d, want %d", resp.StatusCode, wantStatus)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("Content-Type = %q", ct)
		}
		var body reefhttp.ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("decoding envelope: %v", err)
		}
		if body.Error.Code != wantCode {
			t.Errorf("code = %q, want %q", body.Error.Code, wantCode)
		}
		if body.Error.Message == "" {
			t.Error("empty error message")
		}
	}

	// Wrong method on every route.
	for path, method := range map[string]string{
		"/v1/clicks":                    http.MethodGet,
		"/v1/events":                    http.MethodDelete,
		"/v1/stats":                     http.MethodPost,
		"/v1/recommendations":           http.MethodPut,
		"/v1/recommendations/r1/accept": http.MethodGet,
		"/v1/recommendations/r1/reject": http.MethodGet,
		"/v1/users/u/subscriptions":     http.MethodPost,
	} {
		req, _ := http.NewRequest(method, client.base+path, nil)
		resp, err := hc.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Header.Get("Allow") == "" {
			t.Errorf("%s %s: missing Allow header", method, path)
		}
		checkEnvelope(t, resp, http.StatusMethodNotAllowed, reefhttp.CodeMethodNotAllowed)
	}

	// Unknown paths.
	for _, path := range []string{"/v1/nope", "/v2/clicks", "/v1/users/u/other"} {
		resp, err := hc.Get(client.base + path)
		if err != nil {
			t.Fatal(err)
		}
		checkEnvelope(t, resp, http.StatusNotFound, reefhttp.CodeNotFound)
	}

	// Bad JSON.
	resp, err := hc.Post(client.base+"/v1/clicks", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	checkEnvelope(t, resp, http.StatusBadRequest, reefhttp.CodeInvalidArgument)

	// Empty batch: a no-op success, matching in-process deployments.
	resp, err = hc.Post(client.base+"/v1/clicks", "application/json", strings.NewReader(`{"clicks":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("empty batch status = %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()

	// Missing user parameter.
	resp, err = hc.Get(client.base + "/v1/recommendations")
	if err != nil {
		t.Fatal(err)
	}
	checkEnvelope(t, resp, http.StatusBadRequest, reefhttp.CodeInvalidArgument)

	// Missing feed parameter on DELETE.
	req, _ := http.NewRequest(http.MethodDelete, client.base+"/v1/users/u/subscriptions", nil)
	resp, err = hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	checkEnvelope(t, resp, http.StatusBadRequest, reefhttp.CodeInvalidArgument)
}

// TestClientEscapedUser round-trips a user ID containing '/' — the
// client path-escapes it and the server must not let the %2F change the
// route shape.
func TestClientEscapedUser(t *testing.T) {
	ctx := context.Background()
	client, _, web := newServer(t, 10)
	_, srv := feedHostPage(t, web)
	feedURL := serverFeedURL(srv)

	const user = "org/alice"
	if _, err := client.Subscribe(ctx, user, feedURL); err != nil {
		t.Fatal(err)
	}
	subs, err := client.Subscriptions(ctx, user)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || subs[0].User != user {
		t.Fatalf("subs for %q = %+v", user, subs)
	}
}

// TestClientSentinelMapping checks errors.Is across the wire for each
// envelope code the client maps.
func TestClientSentinelMapping(t *testing.T) {
	ctx := context.Background()
	client, dep, _ := newServer(t, 6)

	if err := client.AcceptRecommendation(ctx, "ghost", "r99"); !errors.Is(err, reef.ErrNotFound) {
		t.Errorf("accept unknown = %v, want ErrNotFound", err)
	}
	if _, err := client.Subscribe(ctx, "u", "not-a-url"); !errors.Is(err, reef.ErrInvalidArgument) {
		t.Errorf("bad feed URL = %v, want ErrInvalidArgument", err)
	}
	var apiErr *APIError
	err := client.Unsubscribe(ctx, "ghost", "http://x.test/feed.xml")
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("unsubscribe unknown = %v", err)
	}

	// A closed deployment surfaces as ErrClosed through the 503 mapping.
	_ = dep.Close()
	if _, err := client.Stats(ctx); !errors.Is(err, reef.ErrClosed) {
		t.Errorf("stats after close = %v, want ErrClosed", err)
	}
}

// TestClientUnreachable covers transport-level failure.
func TestClientUnreachable(t *testing.T) {
	client := New("http://127.0.0.1:1") // nothing listens
	_, err := client.IngestClicks(context.Background(), []reef.Click{{User: "u", URL: "http://a.test/"}})
	if err == nil {
		t.Error("unreachable server accepted clicks")
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		t.Errorf("transport failure produced APIError: %v", err)
	}
}

// TestClientHealth round-trips the healthz probe through the SDK.
func TestClientHealth(t *testing.T) {
	ctx := context.Background()
	client, dep, _ := newServer(t, 37)
	h, err := client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Shards != 1 || h.Backend != "memory" {
		t.Errorf("Health = %+v, want ok/1/memory", h)
	}
	_ = dep.Close()
	if _, err := client.Health(ctx); !errors.Is(err, reef.ErrClosed) {
		t.Errorf("Health after close: error = %v, want ErrClosed", err)
	}
}

// TestClientReplicationStatus pins the admin replication fetch: a
// server with a manager answers the status, one without answers
// reef.ErrUnsupported.
func TestClientReplicationStatus(t *testing.T) {
	ctx := context.Background()
	client, _, _ := newServer(t, 53)
	if _, err := client.ReplicationStatus(ctx); !errors.Is(err, reef.ErrUnsupported) {
		t.Fatalf("status without replication = %v, want ErrUnsupported", err)
	}

	mgr, err := replication.New(replication.Options{
		Self: "a",
		Nodes: []replication.Node{
			{ID: "a", BaseURL: "http://unused.test"},
			{ID: "b", BaseURL: "http://unused.test"},
		},
		Replicas: 1,
		Applier:  noopApplier{},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	model := topics.NewModel(53, 4, 10, 12)
	wcfg := websim.DefaultConfig(53, t0)
	wcfg.NumContentServers = 6
	web := websim.Generate(wcfg, model)
	dep, err := reef.NewCentralized(reef.WithFetcher(web), reef.WithPollInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dep.Close() })
	ts := httptest.NewServer(reefhttp.NewHandler(dep, nil, reefhttp.WithReplication(mgr)))
	t.Cleanup(ts.Close)
	c := New(ts.URL, WithHTTPClient(ts.Client()))
	st, err := c.ReplicationStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Self != "a" || st.Replicas != 1 || len(st.Peers) != 1 {
		t.Fatalf("replication status = %+v, want self a with one peer", st)
	}
}

// noopApplier satisfies replication.Applier for status tests.
type noopApplier struct{}

func (noopApplier) ApplyReplicated([]durable.Record) error           { return nil }
func (noopApplier) ApplyReplicatedCut(*durable.State) error          { return nil }
func (noopApplier) CaptureReplicationState() (*durable.State, error) { return &durable.State{}, nil }
