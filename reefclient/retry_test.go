package reefclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"reef"
	"reef/reefhttp"
)

// flakyHandler fails the first n requests with the given status (0 =
// drop the connection), then delegates to ok.
type flakyHandler struct {
	failures int32
	status   int
	remain   atomic.Int32
	ok       http.HandlerFunc
}

func newFlaky(failures int, status int, ok http.HandlerFunc) *flakyHandler {
	h := &flakyHandler{status: status, ok: ok}
	h.remain.Store(int32(failures))
	return h
}

func (h *flakyHandler) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	if h.remain.Add(-1) >= 0 {
		if h.status == 0 {
			// Kill the connection mid-request: a transport-level failure.
			hj, ok := rw.(http.Hijacker)
			if !ok {
				panic("test server does not support hijack")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				panic(err)
			}
			_ = conn.Close()
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(h.status)
		_, _ = rw.Write([]byte(`{"error":{"code":"unavailable","message":"try later"}}`))
		return
	}
	h.ok(rw, req)
}

func okStats(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	_, _ = rw.Write([]byte(`{"stats":{"ok":1}}`))
}

// TestRetryRecoversFromTransients drives the retry loop through the two
// retryable failure classes — dropped connections and 503 envelopes —
// and checks the call succeeds within the budget.
func TestRetryRecoversFromTransients(t *testing.T) {
	for _, tc := range []struct {
		name     string
		failures int
		status   int // 0 = connection drop
	}{
		{"connection drops", 2, 0},
		{"503 unavailable", 2, http.StatusServiceUnavailable},
		{"502 bad gateway", 2, http.StatusBadGateway},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := newFlaky(tc.failures, tc.status, okStats)
			srv := httptest.NewServer(h)
			defer srv.Close()
			cli := New(srv.URL, WithHTTPClient(srv.Client()), WithRetry(3, time.Millisecond))
			stats, err := cli.Stats(context.Background())
			if err != nil {
				t.Fatalf("Stats with retry: %v", err)
			}
			if stats["ok"] != 1 {
				t.Fatalf("stats = %v, want ok=1", stats)
			}
		})
	}
}

// TestRetryBudgetExhausted pins the bounded part of bounded retry: a
// server that never recovers fails after exactly 1+retries attempts.
func TestRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(http.StatusServiceUnavailable)
		_, _ = rw.Write([]byte(`{"error":{"code":"unavailable","message":"down"}}`))
	}))
	defer srv.Close()
	cli := New(srv.URL, WithHTTPClient(srv.Client()), WithRetry(2, time.Millisecond))
	_, err := cli.Stats(context.Background())
	if err == nil {
		t.Fatal("Stats succeeded against a permanently failing server")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 APIError", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (1 + 2 retries)", got)
	}
}

// TestNoRetryOn4xx pins that deterministic failures are final: a 404
// must not burn the retry budget.
func TestNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(http.StatusNotFound)
		_, _ = rw.Write([]byte(`{"error":{"code":"not_found","message":"no"}}`))
	}))
	defer srv.Close()
	cli := New(srv.URL, WithHTTPClient(srv.Client()), WithRetry(3, time.Millisecond))
	err := cli.Unsubscribe(context.Background(), "u", "http://f.test/a.xml")
	if !errors.Is(err, reef.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1 (4xx is final)", got)
	}
}

// TestNoRetryAfter2xx pins the non-idempotency guard: once the server
// answered 2xx it processed the request, so a body that then fails to
// decode must NOT burn the retry budget re-sending the mutation.
func TestNoRetryAfter2xx(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(http.StatusAccepted)
		_, _ = rw.Write([]byte(`{truncated`))
	}))
	defer srv.Close()
	cli := New(srv.URL, WithHTTPClient(srv.Client()), WithRetry(3, time.Millisecond))
	_, err := cli.IngestClicks(context.Background(), []reef.Click{{User: "u", URL: "http://a.test/p"}})
	if err == nil {
		t.Fatal("IngestClicks succeeded on an undecodable response")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1 (post-2xx failures are terminal)", got)
	}
}

// TestRetryOffByDefault pins the compatibility contract: without
// WithRetry a transient 503 surfaces immediately.
func TestRetryOffByDefault(t *testing.T) {
	h := newFlaky(1, http.StatusServiceUnavailable, okStats)
	srv := httptest.NewServer(h)
	defer srv.Close()
	cli := New(srv.URL, WithHTTPClient(srv.Client()))
	if _, err := cli.Stats(context.Background()); !errors.Is(err, reef.ErrClosed) {
		t.Fatalf("err = %v, want the unretried 503 mapped to ErrClosed", err)
	}
}

// TestRetryHonorsContextCancel pins that cancellation cuts the backoff
// sleep short instead of waiting it out.
func TestRetryHonorsContextCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	cli := New(srv.URL, WithHTTPClient(srv.Client()), WithRetry(5, 10*time.Second))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := cli.Stats(ctx); err == nil {
		t.Fatal("Stats succeeded against a failing server")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled call took %v; backoff ignored the context", elapsed)
	}
}

// TestRetryCancelDuringBackoffNoLeak is the regression test for the
// backoff sleep itself: with a backoff far longer than the test, a
// cancellation that lands while do is parked between attempts must
// return promptly (the sleep selects on ctx.Done) and must not strand a
// goroutine behind the timer. The goroutine count is sampled before and
// after; a leaked sleeper would hold the count up for the full 10-minute
// backoff, far beyond the settle loop.
func TestRetryCancelDuringBackoffNoLeak(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(http.StatusServiceUnavailable)
		_, _ = rw.Write([]byte(`{"error":{"code":"unavailable","message":"down"}}`))
	}))
	defer srv.Close()

	before := runtime.NumGoroutine()
	cli := New(srv.URL, WithHTTPClient(srv.Client()), WithRetry(3, 10*time.Minute))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cli.Stats(ctx)
		done <- err
	}()
	// Wait until the first attempt landed, so the cancel hits the backoff
	// sleep rather than the request.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Stats succeeded against a failing server")
		}
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("err = %v, want the last attempt's 503 APIError", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled call still sleeping after 5s; backoff ignored the context")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1 (cancel landed in the first backoff)", got)
	}
	// Allow the HTTP machinery to wind down (keep-alive connection
	// goroutines linger until the pool drops them), then check nothing is
	// stuck.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		srv.Client().CloseIdleConnections()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after cancel; backoff sleeper leaked", before, runtime.NumGoroutine())
}

// TestPerRequestTimeout pins WithTimeout: a hanging server fails the
// attempt at the configured deadline, and with retry each attempt gets
// a fresh budget.
func TestPerRequestTimeout(t *testing.T) {
	var calls atomic.Int32
	block := make(chan struct{})
	defer close(block)
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		calls.Add(1)
		select {
		case <-block:
		case <-req.Context().Done():
		}
	}))
	defer srv.Close()

	cli := New(srv.URL, WithHTTPClient(srv.Client()), WithTimeout(30*time.Millisecond))
	start := time.Now()
	_, err := cli.Stats(context.Background())
	if err == nil {
		t.Fatal("Stats succeeded against a hanging server")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want a deadline error", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timed-out call took %v", elapsed)
	}

	// With retry: the per-attempt deadline is retryable, so the server
	// sees 1+retries attempts.
	cli2 := New(srv.URL, WithHTTPClient(srv.Client()),
		WithTimeout(20*time.Millisecond), WithRetry(2, time.Millisecond))
	calls.Store(0)
	if _, err := cli2.Stats(context.Background()); err == nil {
		t.Fatal("Stats succeeded against a hanging server")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (per-attempt timeouts retry)", got)
	}
}

// TestReady drives the Ready probe across the readiness lifecycle and
// against a dead server.
func TestReady(t *testing.T) {
	ready := reefhttp.NewReadiness()
	dep := nopDeployment{}
	srv := httptest.NewServer(reefhttp.NewHandler(dep, nil,
		reefhttp.WithReadiness(ready), reefhttp.WithNodeID("n7")))
	defer srv.Close()
	cli := New(srv.URL, WithHTTPClient(srv.Client()))
	ctx := context.Background()

	resp, err := cli.Ready(ctx)
	if err == nil || resp.Status != reefhttp.ReadyStarting {
		t.Fatalf("Ready while starting = (%+v, %v), want starting + error", resp, err)
	}
	ready.SetReady()
	resp, err = cli.Ready(ctx)
	if err != nil || resp.Status != reefhttp.ReadyOK || resp.Node != "n7" {
		t.Fatalf("Ready when ready = (%+v, %v), want ready from n7", resp, err)
	}
	ready.SetDraining()
	resp, err = cli.Ready(ctx)
	if err == nil || resp.Status != reefhttp.ReadyDraining {
		t.Fatalf("Ready while draining = (%+v, %v), want draining + error", resp, err)
	}

	srv.Close()
	if resp, err := cli.Ready(ctx); err == nil || resp.Status != "" {
		t.Fatalf("Ready against dead server = (%+v, %v), want empty status + error", resp, err)
	}
}

// nopDeployment is the minimal Deployment for handler-only tests.
type nopDeployment struct{}

func (nopDeployment) IngestClicks(context.Context, []reef.Click) (int, error) { return 0, nil }
func (nopDeployment) PublishEvent(context.Context, reef.Event) (int, error)   { return 0, nil }
func (nopDeployment) PublishBatch(context.Context, []reef.Event) (int, error) { return 0, nil }
func (nopDeployment) Subscriptions(context.Context, string) ([]reef.Subscription, error) {
	return nil, nil
}
func (nopDeployment) Subscribe(context.Context, string, string, ...reef.SubscribeOption) (reef.Subscription, error) {
	return reef.Subscription{}, nil
}
func (nopDeployment) Unsubscribe(context.Context, string, string) error { return nil }
func (nopDeployment) Recommendations(context.Context, string) ([]reef.Recommendation, error) {
	return nil, nil
}
func (nopDeployment) AcceptRecommendation(context.Context, string, string) error { return nil }
func (nopDeployment) RejectRecommendation(context.Context, string, string) error { return nil }
func (nopDeployment) Stats(context.Context) (reef.Stats, error)                  { return reef.Stats{}, nil }
func (nopDeployment) Close() error                                               { return nil }
