package reefclient

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"reef"
	"reef/reefstream"
)

// The stream client is the intended data plane; pin that it satisfies
// the Transport surface structurally (reefstream does not import this
// package), including the consume side.
var _ Transport = (*reefstream.Client)(nil)
var _ ConsumerTransport = (*reefstream.Client)(nil)

// TestDefaultClientReusesConnections is the regression test for the
// connection-churn bug: the old default (http.DefaultClient, whose
// transport keeps only 2 idle connections per host) redialed TCP on
// nearly every call once concurrency passed 2. The tuned default pool
// must serve a concurrent publish load over a bounded set of
// connections instead of one per request.
func TestDefaultClientReusesConnections(t *testing.T) {
	var conns atomic.Int64
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"delivered":0}`))
	}))
	ts.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			conns.Add(1)
		}
	}
	ts.Start()
	defer ts.Close()

	c := New(ts.URL)
	ctx := context.Background()
	const workers, perWorker = 8, 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := c.PublishEvent(ctx, reef.Event{Attrs: map[string]string{"k": "v"}}); err != nil {
					t.Errorf("PublishEvent: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Every worker may own a connection, plus slack for races during
	// ramp-up. With the 2-per-host default this load opens one
	// connection per request (240), so the bound below has a wide
	// margin on both sides.
	if got := conns.Load(); got > workers*2 {
		t.Errorf("server saw %d TCP connections for %d requests; the pool is churning", got, workers*perWorker)
	}
}

// recordingTransport counts what the client routes to the data plane.
type recordingTransport struct {
	events  int
	batches int
	closed  bool
}

func (r *recordingTransport) PublishEvent(ctx context.Context, ev reef.Event) (int, error) {
	r.events++
	return 1, nil
}

func (r *recordingTransport) PublishBatch(ctx context.Context, evs []reef.Event) (int, error) {
	r.batches += len(evs)
	return len(evs), nil
}

func (r *recordingTransport) Close() error {
	r.closed = true
	return nil
}

// TestWithTransportRoutesPublishes pins the control/data-plane split:
// publishes ride the transport, everything else still hits REST, and
// Close tears the transport down.
func TestWithTransportRoutesPublishes(t *testing.T) {
	var restCalls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		restCalls.Add(1)
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	tr := &recordingTransport{}
	c := New(ts.URL, WithTransport(tr))
	ctx := context.Background()
	if n, err := c.PublishEvent(ctx, reef.Event{Attrs: map[string]string{"k": "v"}}); err != nil || n != 1 {
		t.Fatalf("PublishEvent = (%d, %v)", n, err)
	}
	if n, err := c.PublishBatch(ctx, make([]reef.Event, 3)); err != nil || n != 3 {
		t.Fatalf("PublishBatch = (%d, %v)", n, err)
	}
	if tr.events != 1 || tr.batches != 3 {
		t.Errorf("transport saw (%d events, %d batch events), want (1, 3)", tr.events, tr.batches)
	}
	if restCalls.Load() != 0 {
		t.Errorf("publishes leaked onto REST: %d calls", restCalls.Load())
	}
	if _, err := c.Ready(ctx); err != nil {
		t.Fatalf("Ready over REST: %v", err)
	}
	if restCalls.Load() == 0 {
		t.Error("control-plane call did not reach REST")
	}
	if err := c.Close(); err != nil || !tr.closed {
		t.Errorf("Close = %v, transport closed = %v", err, tr.closed)
	}
}

// consumerTransportStub scripts the stream consume plane's failures.
type consumerTransportStub struct {
	recordingTransport
	fetches  int
	acks     int
	fetchErr error
	ackErr   error
}

func (s *consumerTransportStub) FetchEvents(ctx context.Context, user, subID string, max int) ([]reef.DeliveredEvent, error) {
	s.fetches++
	if s.fetchErr != nil {
		return nil, s.fetchErr
	}
	return []reef.DeliveredEvent{{Seq: 1}}, nil
}

func (s *consumerTransportStub) Ack(ctx context.Context, user, subID string, seq int64, nack bool) error {
	s.acks++
	return s.ackErr
}

// TestConsumerTransportFallback pins the consume routing contract:
// healthy calls ride the stream and never touch REST; a connection-level
// failure falls back to REST for that call but keeps trying the stream;
// an unsupported verdict latches REST permanently; server verdicts
// (unknown subscription) surface without a REST retry.
func TestConsumerTransportFallback(t *testing.T) {
	var restFetches atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		restFetches.Add(1)
		w.Write([]byte(`{"events":[]}`))
	}))
	defer ts.Close()
	ctx := context.Background()

	// Healthy stream: REST never sees the fetch or the ack.
	tr := &consumerTransportStub{}
	c := New(ts.URL, WithTransport(tr))
	if evs, err := c.FetchEvents(ctx, "u", "s", 8); err != nil || len(evs) != 1 {
		t.Fatalf("FetchEvents = (%d events, %v), want the stream's delivery", len(evs), err)
	}
	if err := c.Ack(ctx, "u", "s", 1, false); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	if tr.fetches != 1 || tr.acks != 1 || restFetches.Load() != 0 {
		t.Fatalf("healthy routing = (%d stream fetches, %d stream acks, %d REST calls), want (1, 1, 0)",
			tr.fetches, tr.acks, restFetches.Load())
	}
	_ = c.Close()

	// Connection-level failure: this call lands on REST, the next one
	// tries the stream again.
	tr = &consumerTransportStub{fetchErr: errors.New("conn reset")}
	c = New(ts.URL, WithTransport(tr))
	if _, err := c.FetchEvents(ctx, "u", "s", 8); err != nil {
		t.Fatalf("FetchEvents with broken stream: %v (REST must absorb it)", err)
	}
	if _, err := c.FetchEvents(ctx, "u", "s", 8); err != nil {
		t.Fatal(err)
	}
	if tr.fetches != 2 || restFetches.Load() != 2 {
		t.Fatalf("transient routing = (%d stream tries, %d REST calls), want (2, 2)", tr.fetches, restFetches.Load())
	}
	_ = c.Close()

	// Unsupported server: the first failure latches REST; the stream is
	// never asked again.
	restFetches.Store(0)
	tr = &consumerTransportStub{fetchErr: reef.ErrUnsupported}
	c = New(ts.URL, WithTransport(tr))
	for i := 0; i < 3; i++ {
		if _, err := c.FetchEvents(ctx, "u", "s", 8); err != nil {
			t.Fatal(err)
		}
	}
	if tr.fetches != 1 || restFetches.Load() != 3 {
		t.Fatalf("unsupported routing = (%d stream tries, %d REST calls), want (1, 3)", tr.fetches, restFetches.Load())
	}
	_ = c.Close()

	// A server verdict surfaces as-is: REST cannot do better than the
	// deployment's own answer.
	restFetches.Store(0)
	tr = &consumerTransportStub{fetchErr: reef.ErrNotFound, ackErr: reef.ErrInvalidArgument}
	c = New(ts.URL, WithTransport(tr))
	if _, err := c.FetchEvents(ctx, "u", "ghost", 8); !errors.Is(err, reef.ErrNotFound) {
		t.Fatalf("FetchEvents verdict = %v, want ErrNotFound", err)
	}
	if err := c.Ack(ctx, "u", "s", 9, false); !errors.Is(err, reef.ErrInvalidArgument) {
		t.Fatalf("Ack verdict = %v, want ErrInvalidArgument", err)
	}
	if restFetches.Load() != 0 {
		t.Fatalf("server verdicts leaked onto REST: %d calls", restFetches.Load())
	}
	_ = c.Close()
}
