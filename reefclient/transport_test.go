package reefclient

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"reef"
	"reef/reefstream"
)

// The stream client is the intended data plane; pin that it satisfies
// the Transport surface structurally (reefstream does not import this
// package).
var _ Transport = (*reefstream.Client)(nil)

// TestDefaultClientReusesConnections is the regression test for the
// connection-churn bug: the old default (http.DefaultClient, whose
// transport keeps only 2 idle connections per host) redialed TCP on
// nearly every call once concurrency passed 2. The tuned default pool
// must serve a concurrent publish load over a bounded set of
// connections instead of one per request.
func TestDefaultClientReusesConnections(t *testing.T) {
	var conns atomic.Int64
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"delivered":0}`))
	}))
	ts.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			conns.Add(1)
		}
	}
	ts.Start()
	defer ts.Close()

	c := New(ts.URL)
	ctx := context.Background()
	const workers, perWorker = 8, 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := c.PublishEvent(ctx, reef.Event{Attrs: map[string]string{"k": "v"}}); err != nil {
					t.Errorf("PublishEvent: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Every worker may own a connection, plus slack for races during
	// ramp-up. With the 2-per-host default this load opens one
	// connection per request (240), so the bound below has a wide
	// margin on both sides.
	if got := conns.Load(); got > workers*2 {
		t.Errorf("server saw %d TCP connections for %d requests; the pool is churning", got, workers*perWorker)
	}
}

// recordingTransport counts what the client routes to the data plane.
type recordingTransport struct {
	events  int
	batches int
	closed  bool
}

func (r *recordingTransport) PublishEvent(ctx context.Context, ev reef.Event) (int, error) {
	r.events++
	return 1, nil
}

func (r *recordingTransport) PublishBatch(ctx context.Context, evs []reef.Event) (int, error) {
	r.batches += len(evs)
	return len(evs), nil
}

func (r *recordingTransport) Close() error {
	r.closed = true
	return nil
}

// TestWithTransportRoutesPublishes pins the control/data-plane split:
// publishes ride the transport, everything else still hits REST, and
// Close tears the transport down.
func TestWithTransportRoutesPublishes(t *testing.T) {
	var restCalls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		restCalls.Add(1)
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	tr := &recordingTransport{}
	c := New(ts.URL, WithTransport(tr))
	ctx := context.Background()
	if n, err := c.PublishEvent(ctx, reef.Event{Attrs: map[string]string{"k": "v"}}); err != nil || n != 1 {
		t.Fatalf("PublishEvent = (%d, %v)", n, err)
	}
	if n, err := c.PublishBatch(ctx, make([]reef.Event, 3)); err != nil || n != 3 {
		t.Fatalf("PublishBatch = (%d, %v)", n, err)
	}
	if tr.events != 1 || tr.batches != 3 {
		t.Errorf("transport saw (%d events, %d batch events), want (1, 3)", tr.events, tr.batches)
	}
	if restCalls.Load() != 0 {
		t.Errorf("publishes leaked onto REST: %d calls", restCalls.Load())
	}
	if _, err := c.Ready(ctx); err != nil {
		t.Fatalf("Ready over REST: %v", err)
	}
	if restCalls.Load() == 0 {
		t.Error("control-plane call did not reach REST")
	}
	if err := c.Close(); err != nil || !tr.closed {
		t.Errorf("Close = %v, transport closed = %v", err, tr.closed)
	}
}
