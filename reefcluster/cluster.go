// Package reefcluster scales reef out: a Cluster implements
// reef.Deployment by routing over N reefd nodes, so capacity is no
// longer capped by one machine. It is the multi-node analog of the
// in-process shard router (reef.WithShards):
//
//   - Each node owns a static slice of the user hash space — the same
//     FNV-1a scheme the shard router uses, applied at node granularity
//     over the configured node list. User-addressed calls (clicks,
//     subscriptions, recommendations) forward to the owning node
//     through the reef client SDK.
//   - PublishEvent/PublishBatch stamp the events once and fan out to
//     every routable node concurrently, mirroring the in-process
//     fan-out; the result sums the nodes' local delivery counts. Nodes
//     configured with a StreamAddr receive publishes over a persistent
//     binary stream (reefstream) — the batch is encoded once and the
//     same payload ships to every node — while REST remains the
//     control plane and the publish fallback.
//   - Stats and StorageInfo aggregate across nodes with per-node
//     breakdowns.
//
// Membership is a static seed list plus liveness: a background prober
// (internal/membership) walks every node's /v1/healthz and /v1/readyz
// on a jittered interval and keeps a per-node up/draining/down state.
// The headline behavior is failover. With Config.Replicas == 0, when a
// node dies mid-workload calls for its users fail fast with ErrNodeDown
// while every other user keeps being served; when the node restarts it
// recovers from its own WAL and the prober re-admits it — no operator
// action, no rebalancing. With Replicas == k > 0 the nodes ship each
// user's WAL records to the next k nodes in list order
// (internal/replication), and the router walks that same replica set:
// a dead primary's users are served by the first up replica within one
// probe interval, and fail back automatically on re-admission.
// Placement is intentionally static (node list order is the contract,
// like the shard count is on disk): moving users between nodes is a
// data migration, not a failover.
package reefcluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"reef"
	"reef/internal/membership"
	"reef/internal/metrics"
	"reef/internal/routing"
	"reef/reefclient"
	"reef/reefhttp"
	"reef/reefstream"
)

// ErrNodeDown is the typed failover error: the node owning the
// addressed user is not routable (dead, still recovering its WAL, or
// draining for shutdown). Calls for users on other nodes are
// unaffected. NodeDownError instances match it with errors.Is; they
// also match reef.ErrClosed, so the REST surface maps a routed-through
// node failure to the same 503 envelope a closed deployment gets.
var ErrNodeDown = errors.New("reefcluster: node down")

// NodeDownError reports which node was unroutable and why.
type NodeDownError struct {
	// Node is the owning node's ID ("any" for cluster-wide failures
	// such as a publish finding no routable node at all).
	Node string
	// State is the membership verdict: "down" or "draining".
	State string
	// Err is the underlying transport error when one triggered the
	// verdict mid-call, nil when the prober had already marked the node.
	Err error
}

// Error implements error.
func (e *NodeDownError) Error() string {
	msg := fmt.Sprintf("reefcluster: node %s is %s", e.Node, e.State)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Is makes errors.Is(err, ErrNodeDown) and errors.Is(err,
// reef.ErrClosed) both true, keeping sentinel checks working through
// the REST surface while the specific check stays available.
func (e *NodeDownError) Is(target error) bool {
	return target == ErrNodeDown || target == reef.ErrClosed
}

// Unwrap exposes the transport error, when there is one.
func (e *NodeDownError) Unwrap() error { return e.Err }

// Node is one cluster member. ID must match the node's reefd -node-id
// (the prober cross-checks it, catching a probe answered by a stranger
// on a reused address); BaseURL is the node's API root.
type Node struct {
	ID      string
	BaseURL string

	// StreamAddr is the node's binary ingest listener (reefd
	// -stream-addr), host:port. When set, the router publishes to this
	// node over one long-lived reefstream connection instead of REST;
	// empty keeps that node's publishes on REST. Control-plane calls
	// always use BaseURL either way.
	StreamAddr string
}

// Config describes the cluster. Nodes is the placement contract: a
// user's owner is Nodes[fnv1a(user) % len(Nodes)], so the list's order
// and length must be identical on every router and across restarts —
// changing either re-homes users whose data stays on the old owner.
type Config struct {
	Nodes []Node

	// Replicas is k in the replicated placement: each user's records
	// live on a primary (the FNV-1a slot) plus the next k nodes in list
	// order, kept in sync by WAL shipping (internal/replication) on the
	// nodes themselves. The router walks that same replica set when the
	// primary is down: user calls are served by the first Up member —
	// failover promotion — and return to the primary as soon as the
	// prober re-admits it (static preference order means automatic
	// fail-back). 0 keeps the single-copy layout: down primary → fail
	// fast. Must match the -replicas the nodes run with, and must be
	// < len(Nodes).
	Replicas int

	// ProbeInterval is the base membership probe period per node
	// (default 1s); ProbeTimeout bounds one probe (default interval).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration

	// CallTimeout bounds each forwarded request attempt (default 10s).
	CallTimeout time.Duration
	// Retries is how many extra attempts a forwarded call gets on
	// connection errors and 502/503 answers (jittered backoff between
	// them, see reefclient.WithRetry). Default 1; negative disables.
	Retries int
	// RetryBackoff is the first backoff delay (default 25ms).
	RetryBackoff time.Duration

	// HTTPClient overrides the transport for every node client (tests).
	HTTPClient *http.Client

	// Metrics is the registry the router's counters (forward errors,
	// publish skips/partials) register into. The router reefd passes its
	// REST handler's registry so one /v1/metrics scrape covers routing
	// health; nil uses a private registry (Stats still reports the
	// counters either way).
	Metrics *metrics.Registry

	// Logger receives the router's structured events — node demotions
	// above all. Nil discards them.
	Logger *slog.Logger
}

// Cluster routes a reef.Deployment over N reefd nodes.
type Cluster struct {
	nodes    []Node
	replicas int
	clients  []*reefclient.Client // forwarding clients, with retry
	streams  []*reefstream.Client // publish data planes; nil where the node has no StreamAddr
	tracker  *membership.Tracker
	metrics  *metrics.Registry
	logger   *slog.Logger

	mu     sync.Mutex
	closed bool

	// Registry-backed routing-health counters (named from the shared
	// constant table, so Stats keys and /v1/metrics families agree).
	mForwardErrors  *metrics.Counter // transport failures on forwarded calls
	mPublishSkips   *metrics.Counter // node publishes skipped or lost to node failures
	mPublishPartial *metrics.Counter // publishes that landed on fewer than all configured nodes
}

var (
	_ reef.Deployment        = (*Cluster)(nil)
	_ reef.Persister         = (*Cluster)(nil)
	_ reef.ReliableDeliverer = (*Cluster)(nil)
)

// New builds the cluster router and runs one synchronous probe round so
// the first routing decision sees real node states, then starts the
// background prober. Nodes that are down merely start as Down — their
// users fail fast until the prober re-admits them; New itself succeeds
// as long as the configuration is valid.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("%w: cluster needs at least one node", reef.ErrInvalidArgument)
	}
	seen := make(map[string]struct{}, len(cfg.Nodes))
	seenURL := make(map[string]string, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		if n.ID == "" || n.BaseURL == "" {
			return nil, fmt.Errorf("%w: node needs both an ID and a base URL (got %+v)", reef.ErrInvalidArgument, n)
		}
		if _, dup := seen[n.ID]; dup {
			return nil, fmt.Errorf("%w: duplicate node ID %q", reef.ErrInvalidArgument, n.ID)
		}
		seen[n.ID] = struct{}{}
		// Two IDs sharing one URL would silently route two users' worth
		// of placement to one deployment — refuse it up front.
		if prev, dup := seenURL[n.BaseURL]; dup {
			return nil, fmt.Errorf("%w: nodes %q and %q share base URL %q", reef.ErrInvalidArgument, prev, n.ID, n.BaseURL)
		}
		seenURL[n.BaseURL] = n.ID
		if n.StreamAddr != "" {
			if prev, dup := seenURL["stream:"+n.StreamAddr]; dup {
				return nil, fmt.Errorf("%w: nodes %q and %q share stream address %q", reef.ErrInvalidArgument, prev, n.ID, n.StreamAddr)
			}
			seenURL["stream:"+n.StreamAddr] = n.ID
		}
	}
	if cfg.Replicas < 0 || cfg.Replicas >= len(cfg.Nodes) {
		return nil, fmt.Errorf("%w: replicas %d out of range for %d nodes (need 0 <= k < nodes)",
			reef.ErrInvalidArgument, cfg.Replicas, len(cfg.Nodes))
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.ProbeInterval
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 10 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 1
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}

	c := &Cluster{nodes: cfg.Nodes, replicas: cfg.Replicas, metrics: cfg.Metrics, logger: cfg.Logger}
	if c.metrics == nil {
		c.metrics = metrics.NewRegistry()
	}
	if c.logger == nil {
		c.logger = slog.New(slog.DiscardHandler)
	}
	c.mForwardErrors = c.metrics.Counter(metrics.ClusterForwardErrors.Name)
	c.mPublishSkips = c.metrics.Counter(metrics.ClusterPublishSkips.Name)
	c.mPublishPartial = c.metrics.Counter(metrics.ClusterPublishPartial.Name)
	clientOpts := func(extra ...reefclient.Option) []reefclient.Option {
		opts := []reefclient.Option{reefclient.WithTimeout(cfg.CallTimeout)}
		if cfg.HTTPClient != nil {
			opts = append(opts, reefclient.WithHTTPClient(cfg.HTTPClient))
		}
		return append(opts, extra...)
	}
	c.clients = make([]*reefclient.Client, len(cfg.Nodes))
	c.streams = make([]*reefstream.Client, len(cfg.Nodes))
	probeClients := make([]*reefclient.Client, len(cfg.Nodes))
	mnodes := make([]membership.Node, len(cfg.Nodes))
	for i, n := range cfg.Nodes {
		if n.StreamAddr != "" {
			// The stream client verifies the node's handshake identity,
			// the same guard the prober applies to /healthz — a reused
			// port cannot siphon another node's publishes.
			c.streams[i] = reefstream.NewClient(n.StreamAddr,
				reefstream.WithExpectNode(n.ID),
				reefstream.WithCallTimeout(cfg.CallTimeout))
		}
		if cfg.Retries > 0 {
			c.clients[i] = reefclient.New(n.BaseURL, clientOpts(reefclient.WithRetry(cfg.Retries, cfg.RetryBackoff))...)
		} else {
			c.clients[i] = reefclient.New(n.BaseURL, clientOpts()...)
		}
		// Probes never retry: a probe wants this instant's answer, and a
		// retried 503 would stretch every round by the backoff.
		probeClients[i] = reefclient.New(n.BaseURL, clientOpts()...)
		mnodes[i] = membership.Node{ID: n.ID, BaseURL: n.BaseURL}
	}
	byID := make(map[string]*reefclient.Client, len(cfg.Nodes))
	for i, n := range cfg.Nodes {
		byID[n.ID] = probeClients[i]
	}
	probe := func(ctx context.Context, n membership.Node) membership.State {
		return probeNode(ctx, byID[n.ID], n.ID)
	}
	c.tracker = membership.New(mnodes, probe, membership.Options{
		Interval: cfg.ProbeInterval,
		Timeout:  cfg.ProbeTimeout,
	})
	initCtx, cancel := context.WithTimeout(context.Background(), cfg.ProbeTimeout)
	c.tracker.ProbeAll(initCtx)
	cancel()
	c.tracker.Start()
	return c, nil
}

// probeNode is the cluster's membership probe: healthz answers "is a
// live reef node at this address" (including identity, when stamped),
// readyz answers "should it receive new work".
func probeNode(ctx context.Context, cli *reefclient.Client, wantID string) membership.State {
	h, err := cli.Health(ctx)
	if err != nil {
		return membership.Down
	}
	if h.Node != "" && h.Node != wantID {
		// A healthy answer from the wrong process: the address was reused.
		// Routing user data there would corrupt two deployments at once.
		return membership.Down
	}
	ready, err := cli.Ready(ctx)
	switch {
	case err == nil:
		return membership.Up
	case ready.Status == reefhttp.ReadyDraining:
		return membership.Draining
	default:
		// Starting (recovery replay), or an unreadable answer.
		return membership.Down
	}
}

// NodeFor reports which node is a user's primary: the shard router's
// FNV-1a placement hash (internal/routing) at node granularity.
// Exposed so tests, benches and operators can check placement against
// the hash. With replicas configured the primary is the preferred
// owner, not necessarily the serving one — see ReplicaSetFor.
func (c *Cluster) NodeFor(user string) Node {
	return c.nodes[routing.UserSlot(user, len(c.nodes))]
}

// ReplicaSetFor reports a user's full replica set in preference order:
// primary first, then the k replicas. User calls are served by the
// first Up member.
func (c *Cluster) ReplicaSetFor(user string) []Node {
	slots := routing.ReplicaSet(user, len(c.nodes), c.replicas)
	out := make([]Node, len(slots))
	for i, s := range slots {
		out[i] = c.nodes[s]
	}
	return out
}

// Nodes returns the static node list in placement order.
func (c *Cluster) Nodes() []Node { return c.nodes }

// Replicas returns k, the configured replicas per user.
func (c *Cluster) Replicas() int { return c.replicas }

// NodeStatus is one node's tracked membership state.
type NodeStatus struct {
	Node Node
	// State is "up", "draining" or "down".
	State string
	// LastProbe is when the state was last confirmed.
	LastProbe time.Time
}

// Status reports every node's membership state, in placement order.
func (c *Cluster) Status() []NodeStatus {
	snap := c.tracker.Snapshot()
	out := make([]NodeStatus, len(snap))
	for i, s := range snap {
		out[i] = NodeStatus{
			Node:      Node{ID: s.Node.ID, BaseURL: s.Node.BaseURL},
			State:     s.State.String(),
			LastProbe: s.LastProbe,
		}
	}
	return out
}

// ProbeNow runs one synchronous probe round over every node — tests
// and operators use it to refresh membership without waiting out the
// probe interval.
func (c *Cluster) ProbeNow(ctx context.Context) { c.tracker.ProbeAll(ctx) }

// checkOpen rejects calls on a closed cluster or a dead context.
func (c *Cluster) checkOpen(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return reef.ErrClosed
	}
	return nil
}

// owner resolves the node serving a user: the first Up member of the
// user's replica set, in preference order. With the primary Up that is
// the primary (same answer as the k=0 layout); with it Down the first
// up replica is promoted, and because the walk order is static the
// primary takes back over the moment the prober re-admits it. Only
// when the whole set is unroutable does the call fail fast, reporting
// the primary's identity and state.
func (c *Cluster) owner(user string) (int, error) {
	slots := routing.ReplicaSet(user, len(c.nodes), c.replicas)
	for _, s := range slots {
		if c.tracker.State(c.nodes[s].ID) == membership.Up {
			return s, nil
		}
	}
	id := c.nodes[slots[0]].ID
	return 0, &NodeDownError{Node: id, State: c.tracker.State(id).String()}
}

// nodeFault reports whether a forwarded call's failure indicts the
// node rather than the request: transport errors (the node, or the
// path to it, is gone) and 5xx answers — a 503 deployment that closed
// or started draining between probe rounds, a 502/504 from a proxy
// whose backend died, a 500. 501 is the one 5xx that is deterministic
// (reef.ErrUnsupported: every retry and every node answers the same),
// and every 4xx is the request's own fault.
func nodeFault(err error) bool {
	var se *reefstream.StatusError
	if errors.As(err, &se) {
		// A stream ack is the node's own verdict: invalid_argument and
		// not_found are the request's fault (deterministic on every
		// node) and unsupported is a capability answer (the 501
		// analogue); everything else — unavailable (draining/closed),
		// internal — indicts the node, mirroring the 5xx rule below.
		return se.Status != reefstream.StatusInvalidArgument &&
			se.Status != reefstream.StatusNotFound &&
			se.Status != reefstream.StatusUnsupported
	}
	var apiErr *reefclient.APIError
	if !errors.As(err, &apiErr) {
		return true
	}
	return apiErr.StatusCode >= 500 && apiErr.StatusCode != http.StatusNotImplemented
}

// forwardErr post-processes a forwarded call's error. Node faults (see
// nodeFault) demote the node to Down immediately — the prober
// re-admits it when it comes back — and wrap in the typed failover
// error. Every other API error passes through untouched, so sentinel
// mapping keeps working end to end.
func (c *Cluster) forwardErr(i int, err error) error {
	if err == nil {
		return nil
	}
	if !nodeFault(err) {
		return err
	}
	c.mForwardErrors.Add(1)
	c.logger.Warn("node demoted on forward failure",
		"node", c.nodes[i].ID, "err", err)
	c.tracker.Report(c.nodes[i].ID, membership.Down)
	return &NodeDownError{Node: c.nodes[i].ID, State: membership.Down.String(), Err: err}
}

// --- user-addressed calls: forward to the owning node ------------------

// IngestClicks implements reef.Deployment: the batch is validated as a
// whole, split by owning node, and the per-node groups forward
// concurrently. A batch that includes users of an already-down node
// fails fast with ErrNodeDown before anything is sent; a node that
// dies MID-call, however, can leave the batch partially landed — the
// other groups' clicks are already on their nodes (there is no
// cross-node transaction to roll them back with). The returned count
// is what actually landed, also alongside an error, so a caller
// retrying a failed batch knows it may duplicate clicks on the
// surviving groups; callers that need exactly-once should batch
// per user.
func (c *Cluster) IngestClicks(ctx context.Context, clicks []reef.Click) (int, error) {
	if err := c.checkOpen(ctx); err != nil {
		return 0, err
	}
	for _, cl := range clicks {
		if strings.TrimSpace(cl.User) == "" {
			return 0, fmt.Errorf("%w: click with empty user", reef.ErrInvalidArgument)
		}
		if cl.URL == "" {
			return 0, fmt.Errorf("%w: click with empty URL", reef.ErrInvalidArgument)
		}
	}
	if len(clicks) == 0 {
		return 0, nil
	}
	groups := make(map[int][]reef.Click)
	for _, cl := range clicks {
		i, err := c.owner(cl.User)
		if err != nil {
			return 0, err
		}
		groups[i] = append(groups[i], cl)
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total int
		first error
	)
	for i, g := range groups {
		wg.Add(1)
		go func(i int, g []reef.Click) {
			defer wg.Done()
			n, err := c.clients[i].IngestClicks(ctx, g)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if first == nil {
					first = c.forwardErr(i, err)
				}
				return
			}
			total += n
		}(i, g)
	}
	wg.Wait()
	return total, first
}

// Subscriptions implements reef.Deployment by forwarding to the owner.
func (c *Cluster) Subscriptions(ctx context.Context, user string) ([]reef.Subscription, error) {
	i, err := c.userCall(ctx, user)
	if err != nil {
		return nil, err
	}
	subs, err := c.clients[i].Subscriptions(ctx, user)
	return subs, c.forwardErr(i, err)
}

// Subscribe implements reef.Deployment by forwarding to the owner;
// delivery options ride along so a reliable subscription's cursor lives
// on the node that owns the user.
func (c *Cluster) Subscribe(ctx context.Context, user, feedURL string, opts ...reef.SubscribeOption) (reef.Subscription, error) {
	i, err := c.userCall(ctx, user)
	if err != nil {
		return reef.Subscription{}, err
	}
	sub, err := c.clients[i].Subscribe(ctx, user, feedURL, opts...)
	return sub, c.forwardErr(i, err)
}

// FetchEvents implements reef.ReliableDeliverer by forwarding to the
// node owning the user — the cursor and retained window live there.
// When the owner has a stream, the fetch rides it (server-pushed, no
// polling); ownership is resolved per call, so after a failover the
// consumer session re-attaches on the promoted replica's stream, and
// when the primary is re-admitted it snaps back the same way. The
// unacked window straddling the switch redelivers under its lease.
func (c *Cluster) FetchEvents(ctx context.Context, user, subID string, max int) ([]reef.DeliveredEvent, error) {
	i, err := c.userCall(ctx, user)
	if err != nil {
		return nil, err
	}
	if sc := c.streams[i]; sc != nil {
		evs, serr, ok := streamConsume(ctx, func() ([]reef.DeliveredEvent, error) {
			return sc.FetchEvents(ctx, user, subID, max)
		})
		if ok {
			return evs, c.forwardErr(i, serr)
		}
		// Stream transport failure or a node predating the consume
		// plane: REST serves the same call.
	}
	evs, err := c.clients[i].FetchEvents(ctx, user, subID, max)
	return evs, c.forwardErr(i, err)
}

// Ack implements reef.ReliableDeliverer by forwarding to the owner,
// over its stream when it has one. Acks are cumulative and idempotent,
// so the forwarding retry policy — and the stream-to-REST fallback —
// are safe here too.
func (c *Cluster) Ack(ctx context.Context, user, subID string, seq int64, nack bool) error {
	i, err := c.userCall(ctx, user)
	if err != nil {
		return err
	}
	if sc := c.streams[i]; sc != nil {
		_, serr, ok := streamConsume(ctx, func() ([]reef.DeliveredEvent, error) {
			return nil, sc.Ack(ctx, user, subID, seq, nack)
		})
		if ok {
			return c.forwardErr(i, serr)
		}
	}
	return c.forwardErr(i, c.clients[i].Ack(ctx, user, subID, seq, nack))
}

// streamConsume runs one consume call against a node's stream with the
// same ok-contract as streamPublish: ok=true carries the node's own
// verdict (success or a StatusError REST would repeat); ok=false means
// the call should fall back to REST — a transport-level failure, or an
// unsupported verdict from a node that predates the consume plane but
// still serves the REST fetch/ack endpoints.
func streamConsume(ctx context.Context, call func() ([]reef.DeliveredEvent, error)) ([]reef.DeliveredEvent, error, bool) {
	evs, err := call()
	if err == nil {
		return evs, nil, true
	}
	if errors.Is(err, reef.ErrUnsupported) {
		return nil, err, false
	}
	var se *reefstream.StatusError
	if errors.As(err, &se) || ctx.Err() != nil || errors.Is(err, context.DeadlineExceeded) {
		return nil, err, true
	}
	return nil, err, false
}

// DeadLetters implements reef.ReliableDeliverer by forwarding to the
// owner.
func (c *Cluster) DeadLetters(ctx context.Context, user, subID string) ([]reef.DeadLetter, error) {
	i, err := c.userCall(ctx, user)
	if err != nil {
		return nil, err
	}
	dls, err := c.clients[i].DeadLetters(ctx, user, subID)
	return dls, c.forwardErr(i, err)
}

// DrainDeadLetters implements reef.ReliableDeliverer by forwarding to
// the owner.
func (c *Cluster) DrainDeadLetters(ctx context.Context, user, subID string) ([]reef.DeadLetter, error) {
	i, err := c.userCall(ctx, user)
	if err != nil {
		return nil, err
	}
	dls, err := c.clients[i].DrainDeadLetters(ctx, user, subID)
	return dls, c.forwardErr(i, err)
}

// Unsubscribe implements reef.Deployment by forwarding to the owner.
func (c *Cluster) Unsubscribe(ctx context.Context, user, feedURL string) error {
	i, err := c.userCall(ctx, user)
	if err != nil {
		return err
	}
	return c.forwardErr(i, c.clients[i].Unsubscribe(ctx, user, feedURL))
}

// Recommendations implements reef.Deployment by forwarding to the owner.
func (c *Cluster) Recommendations(ctx context.Context, user string) ([]reef.Recommendation, error) {
	i, err := c.userCall(ctx, user)
	if err != nil {
		return nil, err
	}
	recs, err := c.clients[i].Recommendations(ctx, user)
	return recs, c.forwardErr(i, err)
}

// AcceptRecommendation implements reef.Deployment by forwarding to the
// owner.
func (c *Cluster) AcceptRecommendation(ctx context.Context, user, id string) error {
	i, err := c.userCall(ctx, user)
	if err != nil {
		return err
	}
	return c.forwardErr(i, c.clients[i].AcceptRecommendation(ctx, user, id))
}

// RejectRecommendation implements reef.Deployment by forwarding to the
// owner.
func (c *Cluster) RejectRecommendation(ctx context.Context, user, id string) error {
	i, err := c.userCall(ctx, user)
	if err != nil {
		return err
	}
	return c.forwardErr(i, c.clients[i].RejectRecommendation(ctx, user, id))
}

// userCall is the shared preamble of every forwarded user call.
func (c *Cluster) userCall(ctx context.Context, user string) (int, error) {
	if err := c.checkOpen(ctx); err != nil {
		return 0, err
	}
	if strings.TrimSpace(user) == "" {
		return 0, fmt.Errorf("%w: empty user", reef.ErrInvalidArgument)
	}
	return c.owner(user)
}

// --- publishes: stamp once, fan out to every routable node -------------

// PublishEvent implements reef.Deployment: the event is stamped once
// (all nodes record the same publish time) and fanned out to every Up
// node concurrently; the result sums their local delivery counts.
// Nodes that fail at the transport mid-fan-out are demoted and their
// deliveries skipped — publish keeps the cluster's remaining users
// served, which is the failover contract. Only when no node accepts
// the event does the call fail.
func (c *Cluster) PublishEvent(ctx context.Context, ev reef.Event) (int, error) {
	if err := c.checkOpen(ctx); err != nil {
		return 0, err
	}
	if ev.Published.IsZero() {
		ev.Published = time.Now().UTC()
	}
	return c.fanOutPublish(ctx, []reef.Event{ev})
}

// PublishBatch implements reef.Deployment: the batch is stamped once
// and fanned out whole to every Up node (one round trip per node for
// the entire batch, on the stream plane where the node has one).
func (c *Cluster) PublishBatch(ctx context.Context, evs []reef.Event) (int, error) {
	if err := c.checkOpen(ctx); err != nil {
		return 0, err
	}
	if len(evs) == 0 {
		return 0, nil
	}
	now := time.Now().UTC()
	stamped := make([]reef.Event, len(evs))
	copy(stamped, evs)
	for i := range stamped {
		if stamped[i].Published.IsZero() {
			stamped[i].Published = now
		}
	}
	return c.fanOutPublish(ctx, stamped)
}

// fanOutPublish ships stamped events to every Up node. Nodes with a
// stream plane get binary publish frames whose payload is encoded ONCE
// here and shared across all of them — fan-out cost grows with node
// count only by the per-node send, not by re-encoding (the same
// encode-once lesson the replication sender applies). Nodes without a
// stream address, and stream sends that fail at the transport (the
// listener is down but the node is otherwise alive), use REST.
func (c *Cluster) fanOutPublish(ctx context.Context, evs []reef.Event) (int, error) {
	var payloads [][]byte
	if c.hasStreams() {
		for start := 0; start < len(evs); start += reefstream.MaxFrameEvents {
			end := start + reefstream.MaxFrameEvents
			if end > len(evs) {
				end = len(evs)
			}
			payloads = append(payloads, reefstream.EncodeEvents(evs[start:end]))
		}
	}
	return c.fanOut(ctx, func(i int) (int, error) {
		if sc := c.streams[i]; sc != nil {
			total, err, ok := streamPublish(ctx, sc, payloads)
			if ok {
				return total, err
			}
			// Stream transport failure: the listener may be down while
			// the node itself is alive — give REST the call.
		}
		return c.clients[i].PublishBatch(ctx, evs)
	})
}

// streamPublish ships the pre-encoded payloads over one node's stream.
// ok=false means a transport-level failure where REST may still reach
// the node; ok=true carries the stream's verdict (including a
// StatusError — the node's answer about the events themselves, which
// REST would repeat).
func streamPublish(ctx context.Context, sc *reefstream.Client, payloads [][]byte) (total int, err error, ok bool) {
	for _, p := range payloads {
		n, perr := sc.PublishPayload(ctx, p)
		total += n
		if perr == nil {
			continue
		}
		var se *reefstream.StatusError
		if errors.As(perr, &se) {
			return total, perr, true
		}
		return total, perr, false
	}
	return total, nil, true
}

func (c *Cluster) hasStreams() bool {
	for _, sc := range c.streams {
		if sc != nil {
			return true
		}
	}
	return false
}

// fanOut runs a publish against every Up node concurrently and sums
// the delivery counts. API errors (validation) propagate — they are
// deterministic and identical on every node; transport errors demote
// the node and are skipped. With zero routable nodes, or when every
// routable node failed mid-call, the publish fails with ErrNodeDown.
//
// Skip accounting is explicit, because a skipped node is silent data
// loss for that node's subscribers: every skipped or failed node bumps
// cluster_publish_skips (one per node per publish), and a publish that
// succeeds without reaching every configured node additionally bumps
// cluster_publish_partial (one per publish). A caller that must not
// lose audience on a down node watches those gauges; the call itself
// stays successful on the survivors — that is the failover contract.
func (c *Cluster) fanOut(ctx context.Context, fn func(i int) (int, error)) (int, error) {
	var targets []int
	for i, n := range c.nodes {
		if c.tracker.State(n.ID) == membership.Up {
			targets = append(targets, i)
		} else {
			c.mPublishSkips.Add(1)
		}
	}
	if len(targets) == 0 {
		return 0, &NodeDownError{Node: "any", State: membership.Down.String()}
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		total    int
		landed   int
		firstAPI error
	)
	for _, i := range targets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n, err := fn(i)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if !nodeFault(err) {
					// Deterministic (validation) failure: identical on every
					// node, so it is the publish's answer, not a node's.
					if firstAPI == nil {
						firstAPI = err
					}
					return
				}
				c.mPublishSkips.Add(1)
				_ = c.forwardErr(i, err) // demote; publish itself continues
				return
			}
			landed++
			total += n
		}(i)
	}
	wg.Wait()
	if firstAPI != nil {
		return 0, firstAPI
	}
	if landed == 0 {
		return 0, &NodeDownError{Node: "any", State: membership.Down.String()}
	}
	if landed < len(c.nodes) {
		c.mPublishPartial.Add(1)
	}
	return total, nil
}

// --- aggregation -------------------------------------------------------

// Stats implements reef.Deployment: counters merge across Up nodes
// with the same rules the shard router uses (internal/routing.Merge:
// sums; ".max" keys take the max, ".mean" keys become count-weighted
// means), each node contributes a node_<id>_-prefixed load breakdown,
// and the cluster adds its own gauges: nodes, nodes_up/draining/down,
// cluster_forward_errors and cluster_publish_skips. Down nodes are
// skipped — their counters are unreachable by definition.
func (c *Cluster) Stats(ctx context.Context) (reef.Stats, error) {
	if err := c.checkOpen(ctx); err != nil {
		return nil, err
	}
	type nodeStats struct {
		i  int
		st reef.Stats
	}
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		per []nodeStats
	)
	states := map[string]float64{"up": 0, "draining": 0, "down": 0}
	for _, s := range c.Status() {
		states[s.State]++
	}
	for i, n := range c.nodes {
		if c.tracker.State(n.ID) != membership.Up {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.clients[i].Stats(ctx)
			if err != nil {
				_ = c.forwardErr(i, err)
				return
			}
			mu.Lock()
			per = append(per, nodeStats{i, st})
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	merged := make([]reef.Stats, 0, len(per))
	for _, ns := range per {
		merged = append(merged, ns.st)
	}
	out := routing.Merge(merged)
	for _, ns := range per {
		id := c.nodes[ns.i].ID
		for _, k := range []string{
			metrics.ClicksStored.Key, metrics.UsersWithFrontends.Key,
			metrics.PendingRecommendations.Key, metrics.Shards.Key,
		} {
			if v, ok := ns.st[k]; ok {
				out["node_"+id+"_"+k] = v
			}
		}
	}
	out[metrics.ClusterNodes.Key] = float64(len(c.nodes))
	out[metrics.ClusterNodesUp.Key] = states["up"]
	out[metrics.ClusterNodesDraining.Key] = states["draining"]
	out[metrics.ClusterNodesDown.Key] = states["down"]
	out[metrics.ClusterForwardErrors.Key] = float64(c.mForwardErrors.Value())
	out[metrics.ClusterPublishSkips.Key] = float64(c.mPublishSkips.Value())
	out[metrics.ClusterPublishPartial.Key] = float64(c.mPublishPartial.Value())
	return out, nil
}

// StorageInfo implements reef.Persister: the per-node backend states
// merge under Backend "cluster", with each node's own StorageInfo in
// the Shards breakdown labeled by Node. Unreachable nodes contribute a
// stub entry with Backend "unreachable" instead of failing the whole
// report — an operator asking "how is the cluster's storage" mid-outage
// deserves an answer, not an error.
func (c *Cluster) StorageInfo(ctx context.Context) (reef.StorageInfo, error) {
	if err := c.checkOpen(ctx); err != nil {
		return reef.StorageInfo{}, err
	}
	infos := make([]reef.StorageInfo, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		if c.tracker.State(n.ID) == membership.Down {
			infos[i] = reef.StorageInfo{Node: n.ID, Backend: "unreachable"}
			continue
		}
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			info, err := c.clients[i].StorageInfo(ctx)
			if err != nil {
				if errors.Is(err, reef.ErrUnsupported) {
					infos[i] = reef.StorageInfo{Node: id, Backend: "memory"}
				} else {
					_ = c.forwardErr(i, err)
					infos[i] = reef.StorageInfo{Node: id, Backend: "unreachable"}
				}
				return
			}
			info.Node = id
			infos[i] = info
		}(i, n.ID)
	}
	wg.Wait()
	agg := reef.StorageInfo{Backend: "cluster", Shards: infos}
	for _, in := range infos {
		agg.WALRecords += in.WALRecords
		agg.WALBytes += in.WALBytes
		agg.Snapshots += in.Snapshots
		agg.RecoveredRecords += in.RecoveredRecords
		agg.ShardCount += in.ShardCount
		if in.Generation > agg.Generation {
			agg.Generation = in.Generation
		}
		if in.TornTail {
			agg.TornTail = true
		}
		if in.LastSnapshot.After(agg.LastSnapshot) {
			agg.LastSnapshot = in.LastSnapshot
		}
	}
	return agg, nil
}

// Snapshot implements reef.Persister: every Up node takes a compacting
// snapshot concurrently; the first failure aborts with that node's
// error. It returns the post-compaction aggregate.
func (c *Cluster) Snapshot(ctx context.Context) (reef.StorageInfo, error) {
	if err := c.checkOpen(ctx); err != nil {
		return reef.StorageInfo{}, err
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	for i, n := range c.nodes {
		if c.tracker.State(n.ID) != membership.Up {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.clients[i].Snapshot(ctx); err != nil {
				mu.Lock()
				if first == nil {
					first = c.forwardErr(i, err)
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if first != nil {
		return reef.StorageInfo{}, first
	}
	return c.StorageInfo(ctx)
}

// Close implements reef.Deployment: it stops the prober and marks the
// router closed. The nodes themselves keep running — the cluster
// router is a view over them, not their owner. Idempotent.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.tracker.Close()
	for _, sc := range c.streams {
		if sc != nil {
			sc.Close()
		}
	}
	return nil
}
