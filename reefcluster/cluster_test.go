package reefcluster_test

import (
	"context"
	"errors"
	"net"
	"net/http"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"reef"
	"reef/internal/durable/durabletest"
	"reef/internal/replication"
	"reef/internal/topics"
	"reef/internal/websim"
	"reef/reefcluster"
	"reef/reefhttp"
	"reef/reefstream"
)

var t0 = time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)

// testWeb builds a small synthetic web shared by every node of a test
// cluster (nodes only read it: the tests drive pipelines explicitly).
func testWeb(seed int64) *websim.Web {
	model := topics.NewModel(seed, 4, 10, 12)
	wcfg := websim.DefaultConfig(seed, t0)
	wcfg.NumContentServers = 10
	wcfg.NumAdServers = 2
	wcfg.NumSpamServers = 1
	wcfg.NumMultimediaServers = 1
	wcfg.FeedProb = 0.6
	return websim.Generate(wcfg, model)
}

// testNode is one restartable cluster member: a file-backed Centralized
// deployment behind the REST surface on a stable address, so a restart
// after a kill comes back where the cluster expects it.
type testNode struct {
	id    string
	dir   string
	addr  string
	web   *websim.Web
	dep   *reef.Centralized
	srv   *http.Server
	ready *reefhttp.Readiness
	done  chan struct{}

	// Replication wiring; zero on plain cluster tests. Set replicas and
	// peers before boot to run a replication.Manager alongside the node
	// (see startReplCluster in replication_e2e_test.go).
	replicas int
	peers    []replication.Node
	mgr      *replication.Manager

	// Stream data plane wiring; zero unless the cluster runs one. Set
	// streamLn (a pre-bound listener) before the first boot; restarts
	// rebind the recorded streamAddr so the cluster's static config
	// stays valid across a kill.
	streamLn   net.Listener
	streamAddr string
	stream     *reefstream.Server
}

// startTestNode boots a fresh node: new data dir, new listener.
func startTestNode(t *testing.T, id string, web *websim.Web) *testNode {
	t.Helper()
	n := &testNode{id: id, dir: t.TempDir(), web: web}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n.addr = ln.Addr().String()
	n.boot(t, ln)
	t.Cleanup(func() { n.shutdown() })
	return n
}

// boot opens the deployment (recovering the node's own WAL) and serves
// it on the given listener, flipping readyz to ready only after the
// recovery replay in NewCentralized completed.
func (n *testNode) boot(t *testing.T, ln net.Listener) {
	t.Helper()
	dep, err := reef.NewCentralized(
		reef.WithFetcher(n.web),
		reef.WithDataDir(n.dir),
		reef.WithSyncPolicy(reef.SyncAlways),
		reef.WithSnapshotEvery(-1),
		reef.WithPollInterval(time.Hour),
	)
	if err != nil {
		t.Fatalf("node %s: %v", n.id, err)
	}
	n.dep = dep
	n.ready = reefhttp.NewReadiness()
	n.ready.SetReady()
	opts := []reefhttp.HandlerOption{reefhttp.WithReadiness(n.ready), reefhttp.WithNodeID(n.id)}
	if n.replicas > 0 {
		mgr, err := replication.New(replication.Options{
			Self:          n.id,
			Nodes:         n.peers,
			Replicas:      n.replicas,
			Applier:       dep,
			Dir:           filepath.Join(n.dir, "replication"),
			RetryInterval: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("node %s replication: %v", n.id, err)
		}
		n.mgr = mgr
		dep.SetReplicationTap(mgr.Offer)
		opts = append(opts, reefhttp.WithReplication(mgr))
	}
	n.srv = &http.Server{Handler: reefhttp.NewHandler(dep, nil, opts...)}
	n.done = make(chan struct{})
	go func() {
		defer close(n.done)
		_ = n.srv.Serve(ln)
	}()
	if n.streamLn != nil || n.streamAddr != "" {
		sln := n.streamLn
		n.streamLn = nil
		if sln == nil {
			// Restart after a kill: rebind the original stream address,
			// retrying briefly in case the port lingers in TIME_WAIT.
			var err error
			for i := 0; i < 50; i++ {
				if sln, err = net.Listen("tcp", n.streamAddr); err == nil {
					break
				}
				time.Sleep(20 * time.Millisecond)
			}
			if sln == nil {
				t.Fatalf("node %s rebind stream %s: %v", n.id, n.streamAddr, err)
			}
		}
		n.streamAddr = sln.Addr().String()
		n.stream = reefstream.NewServer(sln, dep, reefstream.WithNode(n.id))
	}
}

// url is the node's API root.
func (n *testNode) url() string { return "http://" + n.addr }

// kill simulates the node dying: the deployment crashes without
// flushing buffered WAL appends and the listener drops every
// connection.
func (n *testNode) kill(t *testing.T) {
	t.Helper()
	if err := durabletest.Crash(n.dep); err != nil {
		t.Fatalf("node %s crash: %v", n.id, err)
	}
	_ = n.srv.Close()
	<-n.done
	if n.stream != nil {
		n.stream.Close()
		n.stream = nil
	}
	if n.mgr != nil {
		n.mgr.Close()
		n.mgr = nil
	}
	n.dep, n.srv = nil, nil
}

// restart brings a killed node back on its original address; the
// deployment recovers from the node's own WAL.
func (n *testNode) restart(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", n.addr)
	if err != nil {
		t.Fatalf("node %s rebind %s: %v", n.id, n.addr, err)
	}
	n.boot(t, ln)
}

// shutdown releases whatever is still running (idempotent, for
// cleanup).
func (n *testNode) shutdown() {
	if n.srv != nil {
		_ = n.srv.Close()
		<-n.done
	}
	if n.stream != nil {
		n.stream.Close()
		n.stream = nil
	}
	if n.mgr != nil {
		n.mgr.Close()
	}
	if n.dep != nil {
		_ = n.dep.Close()
	}
}

// startCluster boots count nodes and a router over them with fast
// probes.
func startCluster(t *testing.T, count int, web *websim.Web) (*reefcluster.Cluster, []*testNode) {
	return startClusterK(t, count, 0, web)
}

// startClusterK is startCluster with k routing replicas per user.
func startClusterK(t *testing.T, count, replicas int, web *websim.Web) (*reefcluster.Cluster, []*testNode) {
	t.Helper()
	nodes := make([]*testNode, count)
	cfgNodes := make([]reefcluster.Node, count)
	for i := range nodes {
		id := string(rune('a' + i))
		nodes[i] = startTestNode(t, id, web)
		cfgNodes[i] = reefcluster.Node{ID: id, BaseURL: nodes[i].url()}
	}
	cl, err := reefcluster.New(reefcluster.Config{
		Nodes:         cfgNodes,
		Replicas:      replicas,
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  2 * time.Second,
		CallTimeout:   5 * time.Second,
		RetryBackoff:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	return cl, nodes
}

// usersPerNode picks `per` users owned by each node, by hashing
// candidate names through the cluster's own placement.
func usersPerNode(cl *reefcluster.Cluster, nodes []*testNode, per int) map[string][]string {
	out := make(map[string][]string, len(nodes))
	for i := 0; len(out) < len(nodes) || shortest(out, nodes) < per; i++ {
		u := "user-" + string(rune('A'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
		id := cl.NodeFor(u).ID
		if len(out[id]) < per {
			out[id] = append(out[id], u)
		}
	}
	return out
}

func shortest(m map[string][]string, nodes []*testNode) int {
	min := 1 << 30
	for _, n := range nodes {
		if l := len(m[n.id]); l < min {
			min = l
		}
	}
	return min
}

// TestClusterConfigValidation pins the constructor's argument checks.
func TestClusterConfigValidation(t *testing.T) {
	two := []reefcluster.Node{{ID: "a", BaseURL: "http://x.test"}, {ID: "b", BaseURL: "http://y.test"}}
	for _, tc := range []struct {
		name     string
		nodes    []reefcluster.Node
		replicas int
	}{
		{"no nodes", nil, 0},
		{"missing id", []reefcluster.Node{{BaseURL: "http://x.test"}}, 0},
		{"missing url", []reefcluster.Node{{ID: "a"}}, 0},
		{"duplicate id", []reefcluster.Node{{ID: "a", BaseURL: "http://x.test"}, {ID: "a", BaseURL: "http://y.test"}}, 0},
		{"duplicate url", []reefcluster.Node{{ID: "a", BaseURL: "http://x.test"}, {ID: "b", BaseURL: "http://x.test"}}, 0},
		{"negative replicas", two, -1},
		{"replicas >= nodes", two, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := reefcluster.New(reefcluster.Config{
				Nodes: tc.nodes, Replicas: tc.replicas, ProbeTimeout: 50 * time.Millisecond,
			})
			if !errors.Is(err, reef.ErrInvalidArgument) {
				t.Fatalf("New = %v, want ErrInvalidArgument", err)
			}
		})
	}
}

// TestClusterPromotionWalk pins the routing half of failover in
// isolation (no replication streams): with k=1, a user call walks the
// replica set and is served by the first Up member, returns to the
// primary on re-admission, and fails fast naming the primary only when
// the whole set is down.
func TestClusterPromotionWalk(t *testing.T) {
	ctx := context.Background()
	web := testWeb(56)
	cl, nodes := startClusterK(t, 3, 1, web)
	byID := make(map[string]*testNode, len(nodes))
	for _, n := range nodes {
		byID[n.id] = n
	}

	// One user whose primary is nodes[?]; its replica is the next slot.
	user := usersPerNode(cl, nodes, 1)[nodes[0].id][0]
	set := cl.ReplicaSetFor(user)
	if len(set) != 2 || set[0].ID != nodes[0].id {
		t.Fatalf("ReplicaSetFor(%s) = %+v, want primary %s plus one replica", user, set, nodes[0].id)
	}
	primary, replica := byID[set[0].ID], byID[set[1].ID]

	feed := feedURLs(web)[0]
	primary.kill(t)
	cl.ProbeNow(ctx)
	if _, err := cl.Subscribe(ctx, user, feed); err != nil {
		t.Fatalf("Subscribe during failover: %v", err)
	}
	subs, err := replica.dep.Subscriptions(ctx, user)
	if err != nil || len(subs) != 1 {
		t.Fatalf("replica holds %d subscriptions (%v), want the promoted write", len(subs), err)
	}

	// Whole set down → typed error naming the PRIMARY.
	replica.kill(t)
	cl.ProbeNow(ctx)
	var down *reefcluster.NodeDownError
	if _, err := cl.Subscriptions(ctx, user); !errors.As(err, &down) || down.Node != primary.id {
		t.Fatalf("whole-set outage = %v, want NodeDownError{%s}", err, primary.id)
	}

	// Re-admission (flap damping wants consecutive up probes) fails the
	// user back to the primary: reads go there again, and since this
	// test runs no replication streams the promoted write is invisible.
	primary.restart(t)
	deadline := time.Now().Add(10 * time.Second)
	for {
		cl.ProbeNow(ctx)
		subs, err = cl.Subscriptions(ctx, user)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("primary never re-admitted: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(subs) != 0 {
		t.Fatalf("read after fail-back = %d subscriptions, want 0 (primary never saw the write)", len(subs))
	}
}

// TestClusterRoutesToOwningNode subscribes users through the cluster
// and verifies — against each node's in-process deployment — that every
// user's state landed exactly on the node the hash names, and nowhere
// else.
func TestClusterRoutesToOwningNode(t *testing.T) {
	ctx := context.Background()
	web := testWeb(51)
	cl, nodes := startCluster(t, 3, web)
	byNode := usersPerNode(cl, nodes, 2)

	feed := feedURLs(web)[0]
	for _, users := range byNode {
		for _, u := range users {
			if _, err := cl.Subscribe(ctx, u, feed); err != nil {
				t.Fatalf("Subscribe(%s): %v", u, err)
			}
		}
	}
	for _, owner := range nodes {
		for nodeID, users := range byNode {
			for _, u := range users {
				subs, err := owner.dep.Subscriptions(ctx, u)
				if err != nil {
					t.Fatal(err)
				}
				want := 0
				if nodeID == owner.id {
					want = 1
				}
				if len(subs) != want {
					t.Errorf("node %s holds %d subscriptions for %s (owner %s), want %d",
						owner.id, len(subs), u, nodeID, want)
				}
			}
		}
	}

	// Round-trip reads through the cluster agree.
	for _, users := range byNode {
		subs, err := cl.Subscriptions(ctx, users[0])
		if err != nil || len(subs) != 1 || subs[0].FeedURL != feed {
			t.Fatalf("Subscriptions(%s) = (%v, %v), want the placed feed", users[0], subs, err)
		}
	}
}

// TestClusterPublishFanOut places one subscriber per node and checks a
// cluster publish reaches all of them: the delivered count sums over
// nodes for both the single-event and the batch path.
func TestClusterPublishFanOut(t *testing.T) {
	ctx := context.Background()
	web := testWeb(52)
	cl, nodes := startCluster(t, 3, web)
	byNode := usersPerNode(cl, nodes, 1)

	feed := feedURLs(web)[0]
	for _, users := range byNode {
		if _, err := cl.Subscribe(ctx, users[0], feed); err != nil {
			t.Fatal(err)
		}
	}
	ev := reef.Event{Attrs: map[string]string{
		"type": "feed-item", "feed": feed, "title": "t", "link": "http://x.test/item",
	}}
	delivered, err := cl.PublishEvent(ctx, ev)
	if err != nil {
		t.Fatalf("PublishEvent: %v", err)
	}
	if delivered != 3 {
		t.Fatalf("PublishEvent delivered %d, want 3 (one subscriber per node)", delivered)
	}
	delivered, err = cl.PublishBatch(ctx, []reef.Event{ev, ev})
	if err != nil {
		t.Fatalf("PublishBatch: %v", err)
	}
	if delivered != 6 {
		t.Fatalf("PublishBatch delivered %d, want 6 (2 events x 3 subscribers)", delivered)
	}

	// Validation failures are deterministic and fail the publish, not a
	// node.
	if _, err := cl.PublishEvent(ctx, reef.Event{Attrs: map[string]string{}}); !errors.Is(err, reef.ErrInvalidArgument) {
		t.Fatalf("invalid publish = %v, want ErrInvalidArgument", err)
	}
}

// TestClusterAggregation drives clicks through the cluster and checks
// Stats and StorageInfo aggregate with per-node breakdowns.
func TestClusterAggregation(t *testing.T) {
	ctx := context.Background()
	web := testWeb(53)
	cl, nodes := startCluster(t, 3, web)
	byNode := usersPerNode(cl, nodes, 1)

	var clicks []reef.Click
	for _, users := range byNode {
		clicks = append(clicks, reef.Click{User: users[0], URL: "http://site.test/page", At: t0})
	}
	accepted, err := cl.IngestClicks(ctx, clicks)
	if err != nil || accepted != len(clicks) {
		t.Fatalf("IngestClicks = (%d, %v), want %d", accepted, err, len(clicks))
	}

	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats["clicks_stored"] != float64(len(clicks)) {
		t.Errorf("clicks_stored = %v, want %d", stats["clicks_stored"], len(clicks))
	}
	if stats["nodes"] != 3 || stats["nodes_up"] != 3 || stats["nodes_down"] != 0 {
		t.Errorf("node gauges = %v/%v/%v, want 3 up of 3", stats["nodes"], stats["nodes_up"], stats["nodes_down"])
	}
	var perNode float64
	for _, n := range nodes {
		perNode += stats["node_"+n.id+"_clicks_stored"]
	}
	if perNode != float64(len(clicks)) {
		t.Errorf("per-node clicks breakdown sums to %v, want %d", perNode, len(clicks))
	}

	info, err := cl.StorageInfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Backend != "cluster" || len(info.Shards) != 3 {
		t.Fatalf("StorageInfo = %+v, want cluster backend with 3 node entries", info)
	}
	for i, n := range nodes {
		if info.Shards[i].Node != n.id || info.Shards[i].Backend != "file" {
			t.Errorf("node entry %d = %+v, want node %s on file backend", i, info.Shards[i], n.id)
		}
	}

	// A forced snapshot lands on every node.
	after, err := cl.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range after.Shards {
		if after.Shards[i].Generation != info.Shards[i].Generation+1 {
			t.Errorf("node %s generation = %d, want %d",
				after.Shards[i].Node, after.Shards[i].Generation, info.Shards[i].Generation+1)
		}
	}
}

// TestClusterDraining pins the draining leg of membership: a node whose
// readyz flips to draining stops being routed to — owned users fail
// fast, publishes skip it — and is re-admitted the moment it is ready
// again, all without the node's listener ever going away.
func TestClusterDraining(t *testing.T) {
	ctx := context.Background()
	web := testWeb(54)
	cl, nodes := startCluster(t, 3, web)
	byNode := usersPerNode(cl, nodes, 1)
	victim := nodes[1]

	feed := feedURLs(web)[0]
	for _, users := range byNode {
		if _, err := cl.Subscribe(ctx, users[0], feed); err != nil {
			t.Fatal(err)
		}
	}

	victim.ready.SetDraining()
	cl.ProbeNow(ctx)
	for _, s := range cl.Status() {
		want := "up"
		if s.Node.ID == victim.id {
			want = "draining"
		}
		if s.State != want {
			t.Fatalf("node %s state = %s, want %s", s.Node.ID, s.State, want)
		}
	}

	if _, err := cl.Subscriptions(ctx, byNode[victim.id][0]); !errors.Is(err, reefcluster.ErrNodeDown) {
		t.Fatalf("call for draining node's user = %v, want ErrNodeDown", err)
	}
	var down *reefcluster.NodeDownError
	err := cl.Unsubscribe(ctx, byNode[victim.id][0], feed)
	if !errors.As(err, &down) || down.Node != victim.id || down.State != "draining" {
		t.Fatalf("err = %v, want NodeDownError{%s draining}", err, victim.id)
	}

	delivered, err := cl.PublishEvent(ctx, reef.Event{Attrs: map[string]string{
		"type": "feed-item", "feed": feed, "title": "t", "link": "http://x.test/i",
	}})
	if err != nil || delivered != 2 {
		t.Fatalf("publish while draining = (%d, %v), want 2 deliveries from the other nodes", delivered, err)
	}

	victim.ready.SetReady()
	cl.ProbeNow(ctx)
	if _, err := cl.Subscriptions(ctx, byNode[victim.id][0]); err != nil {
		t.Fatalf("call after re-admission: %v", err)
	}
}

// TestClusterClosed pins the router's own closed behavior.
func TestClusterClosed(t *testing.T) {
	ctx := context.Background()
	web := testWeb(55)
	cl, _ := startCluster(t, 2, web)
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := cl.Stats(ctx); !errors.Is(err, reef.ErrClosed) {
		t.Fatalf("Stats on closed cluster = %v, want ErrClosed", err)
	}
	if _, err := cl.Subscribe(ctx, "u", "http://f.test/a.xml"); !errors.Is(err, reef.ErrClosed) {
		t.Fatalf("Subscribe on closed cluster = %v, want ErrClosed", err)
	}
}

// feedURLs returns sorted absolute feed URLs of the synthetic web.
func feedURLs(web *websim.Web) []string {
	var out []string
	for _, s := range web.Servers(websim.KindContent) {
		for path := range s.Feeds {
			out = append(out, s.URL(path))
		}
	}
	if len(out) == 0 {
		panic("synthetic web has no feeds")
	}
	sort.Strings(out)
	return out
}
