package reefcluster_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"reef"
	"reef/internal/durable/durabletest"
	"reef/internal/websim"
	"reef/reefcluster"
)

// TestClusterKillRestartE2E is the acceptance test of the cluster
// subsystem: a 3-node cluster under a real workload loses a node and
// keeps serving every other user, then the node restarts, recovers its
// own WAL, is re-admitted by the prober, and answers with byte-identical
// state (golden-state diff via durabletest).
//
// Timeline:
//
//  1. drive clicks, subscriptions, pipeline recommendations and an
//     accept through the cluster, across users of all three nodes
//  2. capture the cluster-wide golden state
//  3. kill node b (unclean: no WAL flush beyond what SyncAlways wrote,
//     listener drops every connection)
//  4. before any probe: a forwarded call discovers the death at the
//     transport, fails with ErrNodeDown, and demotes the node
//  5. node b's users fail fast; nodes a/c users are fully served;
//     publishes deliver on a/c only
//  6. restart node b on the same address; it replays its WAL and the
//     jittered prober re-admits it without ProbeNow
//  7. capture again: the cluster-wide golden state must be
//     byte-identical, including node b's recovered slice
func TestClusterKillRestartE2E(t *testing.T) {
	ctx := context.Background()
	web := testWeb(61)
	cl, nodes := startCluster(t, 3, web)
	byNode := usersPerNode(cl, nodes, 2)
	victim := nodes[1]

	var allUsers []string
	for _, n := range nodes {
		allUsers = append(allUsers, byNode[n.id]...)
	}

	// --- 1. drive a workload through the cluster ----------------------
	at := t0
	for _, s := range web.Servers(websim.KindContent) {
		if len(s.Feeds) == 0 {
			continue
		}
		for path := range s.Pages {
			for _, u := range allUsers {
				at = at.Add(time.Second)
				if _, err := cl.IngestClicks(ctx, []reef.Click{{User: u, URL: s.URL(path), At: at}}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// The pipeline is node-local compute (reefd runs it on a timer); in
	// the test we drive each node's round directly.
	for _, n := range nodes {
		n.dep.RunPipeline(at)
	}
	// Consume recommendations into the durable pending ledgers through
	// the cluster, and exercise accept on one.
	accepted := false
	for _, u := range allUsers {
		recs, err := cl.Recommendations(ctx, u)
		if err != nil {
			t.Fatal(err)
		}
		if !accepted && len(recs) > 0 {
			if err := cl.AcceptRecommendation(ctx, u, recs[0].ID); err != nil {
				t.Fatal(err)
			}
			accepted = true
		}
	}
	if !accepted {
		t.Fatal("pipeline produced no recommendations to accept")
	}
	feeds := feedURLs(web)
	for i, u := range allUsers {
		if _, err := cl.Subscribe(ctx, u, feeds[i%len(feeds)]); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Unsubscribe(ctx, allUsers[0], feeds[0]); err != nil {
		t.Fatal(err)
	}

	// Fan-out sanity while everything is up: a hot feed with one
	// subscriber per node delivers 3.
	hot := feeds[len(feeds)-1]
	for _, n := range nodes {
		if _, err := cl.Subscribe(ctx, byNode[n.id][1], hot); err != nil {
			t.Fatal(err)
		}
	}
	hotEvent := reef.Event{Attrs: map[string]string{
		"type": "feed-item", "feed": hot, "title": "t", "link": "http://x.test/hot",
	}}
	if delivered, err := cl.PublishEvent(ctx, hotEvent); err != nil || delivered != 3 {
		t.Fatalf("publish with 3 nodes = (%d, %v), want 3 deliveries", delivered, err)
	}

	// --- 2. golden state before the failure ---------------------------
	before, err := durabletest.Capture(ctx, cl, allUsers, durabletest.DurableStatKeys)
	if err != nil {
		t.Fatal(err)
	}

	// --- 3. kill node b ------------------------------------------------
	victim.kill(t)

	// --- 4. the transport discovers the death before any probe does ---
	vUser := byNode[victim.id][0]
	var down *reefcluster.NodeDownError
	if _, err := cl.Subscriptions(ctx, vUser); !errors.As(err, &down) {
		t.Fatalf("first call after kill = %v, want NodeDownError from the transport", err)
	}
	if down.Node != victim.id {
		t.Fatalf("NodeDownError.Node = %s, want %s", down.Node, victim.id)
	}
	// From here the node is demoted: the same call now fails fast
	// without touching the network, still as ErrNodeDown.
	if _, err := cl.Subscriptions(ctx, vUser); !errors.Is(err, reefcluster.ErrNodeDown) {
		t.Fatalf("fail-fast call = %v, want ErrNodeDown", err)
	}

	// --- 5. every other user is fully served --------------------------
	for _, n := range nodes {
		if n.id == victim.id {
			continue
		}
		for _, u := range byNode[n.id] {
			if _, err := cl.Subscriptions(ctx, u); err != nil {
				t.Fatalf("user %s (node %s) after kill: %v", u, n.id, err)
			}
			if _, err := cl.Recommendations(ctx, u); err != nil {
				t.Fatalf("recommendations for %s after kill: %v", u, err)
			}
		}
		if _, err := cl.IngestClicks(ctx, []reef.Click{
			{User: byNode[n.id][0], URL: "http://alive.test/p", At: at.Add(time.Minute)},
		}); err != nil {
			t.Fatalf("ingest for node %s after kill: %v", n.id, err)
		}
	}
	if delivered, err := cl.PublishEvent(ctx, hotEvent); err != nil || delivered != 2 {
		t.Fatalf("publish with a dead node = (%d, %v), want 2 deliveries from the survivors", delivered, err)
	}
	// The cluster still answers aggregates, reporting the hole.
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats["nodes_down"] != 1 || stats["nodes_up"] != 2 {
		t.Fatalf("node gauges after kill = up %v down %v, want 2 up 1 down", stats["nodes_up"], stats["nodes_down"])
	}
	info, err := cl.StorageInfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Shards[1].Backend; got != "unreachable" {
		t.Fatalf("dead node's storage entry = %q, want unreachable", got)
	}

	// Un-do the post-kill ingest so the final capture compares against
	// the pre-kill golden state: the extra click lives on nodes a/c.
	// (Clicks are append-only; instead of undoing, fold them into the
	// expectation below.)
	surviveClicks := float64(len(nodes) - 1)

	// --- 6. restart: WAL recovery, then prober re-admission -----------
	victim.restart(t)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s := cl.Status()[1]; s.State == "up" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted node never re-admitted by the background prober")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// --- 7. byte-identical recovered state ----------------------------
	after, err := durabletest.Capture(ctx, cl, allUsers, durabletest.DurableStatKeys)
	if err != nil {
		t.Fatal(err)
	}
	// The survivors each ingested 1 click to a brand-new host mid-outage
	// by design; adjust the expectation, then require byte equality.
	before.Stats["clicks_stored"] += surviveClicks
	before.Stats["distinct_servers"] += surviveClicks
	diff, err := durabletest.Diff(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if diff != "" {
		t.Fatalf("cluster state after kill+restart differs:\n%s", diff)
	}

	// The rejoined node serves its users again — including honoring a
	// pending-recommendation ID minted before the crash.
	if _, err := cl.Subscriptions(ctx, vUser); err != nil {
		t.Fatalf("victim's user after rejoin: %v", err)
	}
	for _, u := range byNode[victim.id] {
		for _, rec := range after.Pending[u] {
			if err := cl.AcceptRecommendation(ctx, u, rec.ID); err != nil {
				t.Fatalf("accepting pre-crash recommendation %s/%s after rejoin: %v", u, rec.ID, err)
			}
			return
		}
	}
	// No pending recommendation landed on the victim's users; the
	// byte-identical diff above already proves recovery, so just check
	// a write round-trips.
	if _, err := cl.Subscribe(ctx, vUser, feeds[0]); err != nil {
		t.Fatalf("write to rejoined node: %v", err)
	}
}

// TestClusterPublishAllNodesDown pins the cluster-wide failure shape:
// with no routable node, a publish fails with ErrNodeDown instead of
// silently delivering to nobody.
func TestClusterPublishAllNodesDown(t *testing.T) {
	ctx := context.Background()
	web := testWeb(62)
	cl, nodes := startCluster(t, 2, web)
	for _, n := range nodes {
		n.kill(t)
	}
	cl.ProbeNow(ctx)
	_, err := cl.PublishEvent(ctx, reef.Event{Attrs: map[string]string{"topic": "x"}})
	if !errors.Is(err, reefcluster.ErrNodeDown) {
		t.Fatalf("publish with all nodes down = %v, want ErrNodeDown", err)
	}
	var down *reefcluster.NodeDownError
	if !errors.As(err, &down) || down.Node != "any" {
		t.Fatalf("err = %v, want NodeDownError{any}", err)
	}
}
