package reefcluster_test

import (
	"context"
	"strings"
	"testing"

	"reef"
	"reef/internal/metrics"
	"reef/internal/trace"
	"reef/reefclient"
)

// TestClusterObservabilityE2E pins the cross-node observability story on
// a live 3-node cluster: a trace ID minted at the router rides the
// X-Reef-Trace header on every fan-out leg and is visible in each node's
// /v1/admin/trace ring, and every node's /v1/metrics scrape is parseable
// Prometheus text covering the HTTP, engine, and delivery families.
func TestClusterObservabilityE2E(t *testing.T) {
	ctx := context.Background()
	web := testWeb(57)
	cl, nodes := startCluster(t, 3, web)
	byNode := usersPerNode(cl, nodes, 1)

	feed := feedURLs(web)[0]
	for _, users := range byNode {
		if _, err := cl.Subscribe(ctx, users[0], feed); err != nil {
			t.Fatal(err)
		}
	}

	// Mint the trace at the router, as reefd's REST middleware would,
	// and publish under it: the fan-out forwards the header to every
	// node.
	id := trace.NewID()
	traced := trace.NewContext(ctx, id)
	delivered, err := cl.PublishEvent(traced, reef.Event{Attrs: map[string]string{
		"type": "feed-item", "feed": feed, "title": "t", "link": "http://x.test/item",
	}})
	if err != nil || delivered != 3 {
		t.Fatalf("PublishEvent = (%d, %v), want 3 deliveries", delivered, err)
	}

	// Every node's span ring must hold the publish leg under the router's
	// trace ID (the acceptance bar is >= 2 of 3; all three legs ran, so
	// all three rings must have it). The dumps use an untraced context so
	// the inspection itself records nothing under the ID.
	stitched := 0
	for _, n := range nodes {
		cli := reefclient.New(n.url())
		dump, err := cli.TraceDump(ctx, id.String(), 0)
		if err != nil {
			t.Fatalf("TraceDump(%s): %v", n.id, err)
		}
		found := false
		for _, sp := range dump.Spans {
			// The router fans single events out over the batch endpoint.
			if sp.Op == "http.events:batch" && sp.Node == n.id && sp.Trace == id.String() {
				found = true
			}
		}
		if found {
			stitched++
		} else {
			t.Errorf("node %s ring has no http.events:batch span for trace %s: %+v", n.id, id, dump.Spans)
		}
	}
	if stitched != len(nodes) {
		t.Fatalf("trace stitched across %d/%d nodes", stitched, len(nodes))
	}

	// Each node's scrape is well-formed text exposition with the
	// middleware, engine, delivery, and trace families present.
	for _, n := range nodes {
		cli := reefclient.New(n.url())
		body, err := cli.Metrics(ctx)
		if err != nil {
			t.Fatalf("Metrics(%s): %v", n.id, err)
		}
		for _, want := range []string{
			metrics.HTTPRequests.Name + `{class="2xx",route="events:batch"} 1`,
			"# TYPE " + metrics.HTTPRequestSeconds.Name + " histogram",
			metrics.Shards.Name + " ",
			metrics.DeliveryAcked.Name + " ",
			metrics.TraceSpans.Name + " ",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("node %s scrape missing %q", n.id, want)
			}
		}
		for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
			if !strings.HasPrefix(line, "#") && len(strings.Fields(line)) != 2 {
				t.Errorf("node %s: malformed sample line %q", n.id, line)
			}
		}
	}

	// The router's own counters surface through cluster Stats under the
	// constant-table keys.
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		metrics.ClusterForwardErrors.Key,
		metrics.ClusterPublishSkips.Key,
		metrics.ClusterPublishPartial.Key,
	} {
		if v, ok := stats[key]; !ok || v != 0 {
			t.Errorf("router stats[%s] = (%v, %v), want 0 on a healthy cluster", key, v, ok)
		}
	}
}
