package reefcluster_test

import (
	"context"
	"errors"
	"net"
	"net/http"
	"testing"
	"time"

	"reef"
	"reef/internal/durable/durabletest"
	"reef/internal/faulthttp"
	"reef/internal/replication"
	"reef/internal/websim"
	"reef/reefcluster"
)

// startReplCluster boots count nodes that each run a replication
// manager with k replicas per user, plus a router configured with the
// same k. All listeners bind before any node boots, because every
// manager needs every peer's base URL up front. Each node also runs a
// binary stream listener, so publishes and reliable consumes ride the
// data plane across failovers.
func startReplCluster(t *testing.T, count, k int, web *websim.Web) (*reefcluster.Cluster, []*testNode) {
	t.Helper()
	nodes := make([]*testNode, count)
	lns := make([]net.Listener, count)
	peers := make([]replication.Node, count)
	cfgNodes := make([]reefcluster.Node, count)
	for i := range nodes {
		id := string(rune('a' + i))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		sln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		nodes[i] = &testNode{
			id: id, dir: t.TempDir(), web: web, addr: ln.Addr().String(), replicas: k,
			streamLn: sln, streamAddr: sln.Addr().String(),
		}
		peers[i] = replication.Node{ID: id, BaseURL: "http://" + nodes[i].addr}
		cfgNodes[i] = reefcluster.Node{ID: id, BaseURL: "http://" + nodes[i].addr, StreamAddr: nodes[i].streamAddr}
	}
	for i, n := range nodes {
		n.peers = peers
		n.boot(t, lns[i])
		n := n
		t.Cleanup(func() { n.shutdown() })
	}
	cl, err := reefcluster.New(reefcluster.Config{
		Nodes:         cfgNodes,
		Replicas:      k,
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  2 * time.Second,
		CallTimeout:   5 * time.Second,
		RetryBackoff:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	return cl, nodes
}

// waitReplDrained blocks until every live node's outbound streams have
// zero pending entries toward every live peer. Streams toward `skip`
// (a dead node, "" for none) are allowed to hold a backlog.
func waitReplDrained(t *testing.T, nodes []*testNode, skip string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		drained := true
		for _, n := range nodes {
			if n.mgr == nil || n.id == skip {
				continue
			}
			for _, p := range n.mgr.Status().Peers {
				if p.Node == skip {
					continue
				}
				if p.Pending != 0 {
					drained = false
				}
			}
		}
		if drained {
			return
		}
		if time.Now().After(deadline) {
			for _, n := range nodes {
				if n.mgr != nil {
					t.Logf("node %s replication status: %+v", n.id, n.mgr.Status())
				}
			}
			t.Fatal("replication streams never drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// nodeByID finds a test node in the fleet.
func nodeByID(t *testing.T, nodes []*testNode, id string) *testNode {
	t.Helper()
	for _, n := range nodes {
		if n.id == id {
			return n
		}
	}
	t.Fatalf("no node %q", id)
	return nil
}

// TestClusterReplicationFailoverE2E is the acceptance test of
// replicated placement: a 3-node cluster with k=1 loses a primary and
// its users keep being served by the promoted replica — reads answer
// from replicated state, writes land on the replica and queue for the
// dead node — then the old primary rejoins as a replica, absorbs the
// backlog, and holds byte-identical golden state.
//
// Timeline:
//
//  1. drive clicks, pipeline recommendations, an accept, best-effort
//     and reliable subscriptions through the router; publishes deliver
//     to primary AND replica copies of each subscription (warm-standby
//     fan-out: 3 subs × 2 nodes = 6)
//  2. wait until every outbound stream is fully acked, so the kill has
//     no unshipped tail (the async loss window is empty by design here)
//  3. kill the victim primary; one probe round demotes it
//  4. promotion: every call for the victim's users now routes to the
//     replica and succeeds — zero ErrNodeDown — including reliable
//     fetch/ack against the replica's retained events
//  5. outage writes through the router mutate the replica's slice and
//     queue for the dead node (observable as a pending backlog)
//  6. golden-capture the victim's users from the replica's deployment
//  7. restart the victim: WAL recovery + a fresh sender epoch; the
//     replica's stream resumes from its persisted position and drains
//     the backlog; the damped prober re-admits the node
//  8. golden-capture the same users from the rejoined node: the diff
//     must be byte-exact, and the router must have failed back to it
func TestClusterReplicationFailoverE2E(t *testing.T) {
	ctx := context.Background()
	web := testWeb(61)
	cl, nodes := startReplCluster(t, 3, 1, web)
	byNode := usersPerNode(cl, nodes, 2)
	victim := nodes[1]
	vUsers := byNode[victim.id]

	// The victim's users replicate to the next slot in the ring.
	set := cl.ReplicaSetFor(vUsers[0])
	if len(set) != 2 || set[0].ID != victim.id {
		t.Fatalf("replica set for %s = %+v, want primary %s + 1 replica", vUsers[0], set, victim.id)
	}
	standby := nodeByID(t, nodes, set[1].ID)

	var allUsers []string
	for _, n := range nodes {
		allUsers = append(allUsers, byNode[n.id]...)
	}

	// --- 1. workload through the router -------------------------------
	at := t0
	for _, s := range web.Servers(websim.KindContent) {
		if len(s.Feeds) == 0 {
			continue
		}
		for path := range s.Pages {
			for _, u := range allUsers {
				at = at.Add(time.Second)
				if _, err := cl.IngestClicks(ctx, []reef.Click{{User: u, URL: s.URL(path), At: at}}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Pipeline compute runs on the victim only: the test needs
	// recommendations for the victim's users, and keeping the other
	// engines cold keeps the recommendation ledger's provenance
	// single-sourced for the byte-exact diff below.
	victim.dep.RunPipeline(at)
	accepted := false
	for _, u := range vUsers {
		recs, err := cl.Recommendations(ctx, u)
		if err != nil {
			t.Fatal(err)
		}
		if !accepted && len(recs) > 0 {
			if err := cl.AcceptRecommendation(ctx, u, recs[0].ID); err != nil {
				t.Fatal(err)
			}
			accepted = true
		}
	}
	if !accepted {
		t.Fatal("pipeline produced no recommendations for the victim's users")
	}

	feeds := feedURLs(web)
	hot := feeds[len(feeds)-1]
	for _, n := range nodes {
		if _, err := cl.Subscribe(ctx, byNode[n.id][0], hot); err != nil {
			t.Fatal(err)
		}
	}
	// One reliable subscription on a victim user: retained events and
	// cursor acks must survive the failover.
	reliable, err := cl.Subscribe(ctx, vUsers[1], feeds[0], reef.WithGuarantee(reef.AtLeastOnce))
	if err != nil {
		t.Fatal(err)
	}

	// Shipping is asynchronous: wait for the subscription records to
	// land on the replicas before counting warm deliveries.
	waitReplDrained(t, nodes, "")

	// With k=1 every subscription lives on its primary AND its replica,
	// and a publish fans out to every up node: 3 hot subscribers on 2
	// nodes each deliver 6. The duplicate copies are not user-visible —
	// a user only ever reads through one routed node.
	hotEvent := reef.Event{Attrs: map[string]string{
		"type": "feed-item", "feed": hot, "title": "t", "link": "http://x.test/hot",
	}}
	if delivered, err := cl.PublishEvent(ctx, hotEvent); err != nil || delivered != 6 {
		t.Fatalf("publish on full cluster = (%d, %v), want 6 warm deliveries", delivered, err)
	}
	relEvent := reef.Event{Attrs: map[string]string{
		"type": "feed-item", "feed": feeds[0], "title": "r1", "link": "http://x.test/r1",
	}}
	if _, err := cl.PublishEvent(ctx, relEvent); err != nil {
		t.Fatal(err)
	}
	evs, err := cl.FetchEvents(ctx, vUsers[1], reliable.ID, 10)
	if err != nil || len(evs) == 0 {
		t.Fatalf("reliable fetch before failover = (%d events, %v), want ≥ 1", len(evs), err)
	}
	if err := cl.Ack(ctx, vUsers[1], reliable.ID, evs[len(evs)-1].Seq, false); err != nil {
		t.Fatal(err)
	}
	// That fetch rode the victim's stream plane, not REST: the router
	// attaches a server-pushed consumer session on the owning node.
	if attached, delivered := victim.stream.ConsumeStats(); attached < 1 || delivered < 1 {
		t.Fatalf("victim stream consume stats = (%d attached, %d delivered), want a pushed delivery", attached, delivered)
	}

	// --- 2. drain, so the kill loses nothing --------------------------
	waitReplDrained(t, nodes, "")

	// --- 3. kill the victim; one probe round promotes the replica -----
	victim.kill(t)
	cl.ProbeNow(ctx)

	// --- 4. the victim's users are served by the promoted replica -----
	if s := cl.Status()[1].State; s != "down" {
		t.Fatalf("victim state after probe = %s, want down", s)
	}
	// NodeFor still names the (static, preferred) primary; the serving
	// node is the first up member of the replica set — the standby.
	for _, u := range vUsers {
		if cl.NodeFor(u).ID != victim.id {
			t.Fatalf("NodeFor(%s) = %s, want static primary %s", u, cl.NodeFor(u).ID, victim.id)
		}
		subs, err := cl.Subscriptions(ctx, u)
		if err != nil {
			t.Fatalf("subscriptions for %s after failover: %v", u, err)
		}
		if u == byNode[victim.id][0] && len(subs) == 0 {
			t.Fatalf("replicated subscriptions for %s missing on the replica", u)
		}
		if _, err := cl.Recommendations(ctx, u); err != nil {
			t.Fatalf("recommendations for %s after failover: %v", u, err)
		}
	}
	// Publishes keep delivering: the 2 survivors hold 4 live copies of
	// the 3 hot subscriptions (a's on a, b's on its replica c, c's on c
	// and its replica a).
	if delivered, err := cl.PublishEvent(ctx, hotEvent); err != nil || delivered != 4 {
		t.Fatalf("publish after kill = (%d, %v), want 4 deliveries", delivered, err)
	}

	// Reliable delivery fails over too: the replica retained the stream,
	// the replicated cursor ack already cleared r1, and a new event is
	// fetchable and ackable against the replica.
	if _, err := cl.PublishEvent(ctx, reef.Event{Attrs: map[string]string{
		"type": "feed-item", "feed": feeds[0], "title": "r2", "link": "http://x.test/r2",
	}}); err != nil {
		t.Fatal(err)
	}
	evs, err = cl.FetchEvents(ctx, vUsers[1], reliable.ID, 10)
	if err != nil {
		t.Fatalf("reliable fetch after failover: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("reliable fetch after failover returned no events")
	}
	for _, ev := range evs {
		if ev.Event.Attrs["link"] == "http://x.test/r1" {
			t.Fatal("replica redelivered r1: the replicated cursor ack was lost")
		}
	}
	if err := cl.Ack(ctx, vUsers[1], reliable.ID, evs[len(evs)-1].Seq, false); err != nil {
		t.Fatalf("reliable ack after failover: %v", err)
	}
	// The consume stream healed across the promotion: the fetch above
	// attached a fresh pushed session on the standby's stream plane — the
	// victim's session died with its connection.
	if attached, delivered := standby.stream.ConsumeStats(); attached < 1 || delivered < 1 {
		t.Fatalf("standby stream consume stats after promotion = (%d attached, %d delivered), want a pushed delivery", attached, delivered)
	}

	// --- 5. outage writes mutate the replica and queue for the victim -
	if _, err := cl.Subscribe(ctx, vUsers[0], feeds[1]); err != nil {
		t.Fatalf("subscribe during outage: %v", err)
	}
	if _, err := cl.IngestClicks(ctx, []reef.Click{
		{User: vUsers[0], URL: "http://outage.test/p", At: at.Add(time.Minute)},
	}); err != nil {
		t.Fatalf("ingest during outage: %v", err)
	}
	waitReplDrained(t, nodes, victim.id)
	backlog := false
	for _, p := range standby.mgr.Status().Peers {
		if p.Node == victim.id && p.Pending > 0 {
			backlog = true
		}
	}
	if !backlog {
		t.Fatal("outage writes built no backlog toward the dead primary")
	}

	// --- 6. golden state of the victim's slice, from the replica ------
	// Per-node stats gauges legitimately differ across nodes (each also
	// holds its own users), so the capture compares user state only.
	captureMid, err := durabletest.Capture(ctx, standby.dep, vUsers, nil)
	if err != nil {
		t.Fatal(err)
	}

	// --- 7. the old primary rejoins as a replica ----------------------
	victim.restart(t)
	deadline := time.Now().Add(10 * time.Second)
	for cl.Status()[1].State != "up" {
		if time.Now().After(deadline) {
			t.Fatal("restarted node never re-admitted by the damped prober")
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitReplDrained(t, nodes, "")

	// --- 8. byte-exact recovered state and fail-back ------------------
	captureAfter, err := durabletest.Capture(ctx, victim.dep, vUsers, nil)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := durabletest.Diff(captureMid, captureAfter)
	if err != nil {
		t.Fatal(err)
	}
	if diff != "" {
		t.Fatalf("rejoined primary's state differs from the promoted replica's:\n%s", diff)
	}
	// Static preference order means the router fails back automatically
	// (pinned by TestClusterPromotionWalk); here the rejoined primary
	// must serve the outage subscription written on the replica.
	subs, err := cl.Subscriptions(ctx, vUsers[0])
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range subs {
		if s.FeedURL == feeds[1] {
			found = true
		}
	}
	if !found {
		t.Fatalf("outage subscription missing after rejoin: %+v", subs)
	}
}

// TestClusterReplicationWholeSetDown pins the k>0 failure shape: when a
// user's primary AND every replica are gone, calls fail with a
// NodeDownError naming the primary.
func TestClusterReplicationWholeSetDown(t *testing.T) {
	ctx := context.Background()
	web := testWeb(62)
	cl, nodes := startReplCluster(t, 3, 1, web)
	byNode := usersPerNode(cl, nodes, 1)
	victim := nodes[0]
	u := byNode[victim.id][0]
	set := cl.ReplicaSetFor(u)

	nodeByID(t, nodes, set[0].ID).kill(t)
	nodeByID(t, nodes, set[1].ID).kill(t)
	cl.ProbeNow(ctx)

	var down *reefcluster.NodeDownError
	if _, err := cl.Subscriptions(ctx, u); !errors.As(err, &down) {
		t.Fatalf("whole set down = %v, want NodeDownError", err)
	}
	if down.Node != set[0].ID {
		t.Fatalf("NodeDownError.Node = %s, want the primary %s", down.Node, set[0].ID)
	}
}

// TestClusterForwardFaultRetry drives the router through the shared
// fault-injecting transport: a transient connection error on the first
// forwarded call is absorbed by the client's retry, without demoting
// the node.
func TestClusterForwardFaultRetry(t *testing.T) {
	ctx := context.Background()
	web := testWeb(63)
	nodes := []*testNode{startTestNode(t, "a", web)}
	ft := faulthttp.New(http.DefaultTransport,
		// Probes hit /healthz//readyz only, so the scripted fault is
		// consumed by the forwarded call, deterministically.
		&faulthttp.Fault{Match: "/v1/subscriptions", First: 1, Err: faulthttp.ErrInjected})
	cl, err := reefcluster.New(reefcluster.Config{
		Nodes:         []reefcluster.Node{{ID: "a", BaseURL: nodes[0].url()}},
		ProbeInterval: 25 * time.Millisecond,
		CallTimeout:   2 * time.Second,
		RetryBackoff:  time.Millisecond,
		HTTPClient:    &http.Client{Transport: ft},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })

	if _, err := cl.Subscriptions(ctx, "u"); err != nil {
		t.Fatalf("forwarded call with one injected fault = %v, want retried success", err)
	}
	if cl.Status()[0].State != "up" {
		t.Fatalf("node state after absorbed fault = %s, want up", cl.Status()[0].State)
	}
	if ft.Calls() < 2 {
		t.Fatalf("transport saw %d calls, want the faulted attempt plus its retry", ft.Calls())
	}
}
