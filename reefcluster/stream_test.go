package reefcluster_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"reef"
	"reef/reefcluster"
	"reef/reefstream"
)

// startStreamCluster boots count nodes, each with a binary stream
// listener next to its REST surface, and a router configured to publish
// over the streams.
func startStreamCluster(t *testing.T, count int) (*reefcluster.Cluster, []*testNode, []*reefstream.Server) {
	t.Helper()
	web := testWeb(71)
	nodes := make([]*testNode, count)
	streams := make([]*reefstream.Server, count)
	cfgNodes := make([]reefcluster.Node, count)
	for i := range nodes {
		id := string(rune('a' + i))
		nodes[i] = startTestNode(t, id, web)
		srv, err := reefstream.Listen("127.0.0.1:0", nodes[i].dep, reefstream.WithNode(id))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		streams[i] = srv
		cfgNodes[i] = reefcluster.Node{ID: id, BaseURL: nodes[i].url(), StreamAddr: srv.Addr().String()}
	}
	cl, err := reefcluster.New(reefcluster.Config{
		Nodes:         cfgNodes,
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  2 * time.Second,
		CallTimeout:   5 * time.Second,
		RetryBackoff:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	return cl, nodes, streams
}

// TestClusterStreamFanOut pins that publishes ride the stream plane:
// delivery counts match the REST fan-out exactly, and the stream
// servers — not REST — carried the frames.
func TestClusterStreamFanOut(t *testing.T) {
	ctx := context.Background()
	cl, nodes, streams := startStreamCluster(t, 3)
	byNode := usersPerNode(cl, nodes, 1)

	feed := feedURLs(testWeb(71))[0]
	for _, users := range byNode {
		if _, err := cl.Subscribe(ctx, users[0], feed); err != nil {
			t.Fatal(err)
		}
	}
	ev := reef.Event{Attrs: map[string]string{
		"type": "feed-item", "feed": feed, "title": "t", "link": "http://x.test/item",
	}}
	delivered, err := cl.PublishEvent(ctx, ev)
	if err != nil {
		t.Fatalf("PublishEvent: %v", err)
	}
	if delivered != 3 {
		t.Fatalf("PublishEvent delivered %d, want 3 (one subscriber per node)", delivered)
	}
	delivered, err = cl.PublishBatch(ctx, []reef.Event{ev, ev})
	if err != nil {
		t.Fatalf("PublishBatch: %v", err)
	}
	if delivered != 6 {
		t.Fatalf("PublishBatch delivered %d, want 6 (2 events x 3 subscribers)", delivered)
	}
	for i, srv := range streams {
		if frames, events := srv.Stats(); frames != 2 || events != 3 {
			t.Errorf("node %d stream carried (%d frames, %d events), want (2, 3)", i, frames, events)
		}
	}

	// A deterministic validation failure surfaces through the stream
	// acks with the same sentinel REST maps to, and fails the publish —
	// not the nodes.
	if _, err := cl.PublishEvent(ctx, reef.Event{Attrs: map[string]string{}}); !errors.Is(err, reef.ErrInvalidArgument) {
		t.Fatalf("invalid publish = %v, want ErrInvalidArgument", err)
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats["nodes_up"] != 3 {
		t.Errorf("nodes_up = %v after invalid publish, want 3 (validation must not demote)", stats["nodes_up"])
	}
}

// TestClusterStreamFallsBackToREST pins the resilience contract: a node
// whose stream listener is gone (but whose REST surface is alive) still
// receives publishes over REST, without being demoted.
func TestClusterStreamFallsBackToREST(t *testing.T) {
	ctx := context.Background()
	cl, nodes, streams := startStreamCluster(t, 2)
	byNode := usersPerNode(cl, nodes, 1)

	feed := feedURLs(testWeb(71))[0]
	for _, users := range byNode {
		if _, err := cl.Subscribe(ctx, users[0], feed); err != nil {
			t.Fatal(err)
		}
	}
	streams[0].Close() // stream plane down, node alive

	ev := reef.Event{Attrs: map[string]string{
		"type": "feed-item", "feed": feed, "title": "t", "link": "http://x.test/item",
	}}
	delivered, err := cl.PublishEvent(ctx, ev)
	if err != nil {
		t.Fatalf("PublishEvent with one stream down: %v", err)
	}
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2 — the streamless node must land via REST", delivered)
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats["nodes_up"] != 2 {
		t.Errorf("nodes_up = %v, want 2 (a dead stream listener is not a dead node)", stats["nodes_up"])
	}
}

// TestClusterPublishSkipSemantics pins what a publish means when nodes
// are down (the fanOut skip-path audit): the publish succeeds on the
// survivors, every skipped node bumps cluster_publish_skips, the
// publish itself bumps cluster_publish_partial, and only a publish that
// reaches zero nodes fails — with the typed ErrNodeDown.
func TestClusterPublishSkipSemantics(t *testing.T) {
	ctx := context.Background()
	web := testWeb(72)
	cl, nodes := startCluster(t, 3, web)
	byNode := usersPerNode(cl, nodes, 1)

	feed := feedURLs(web)[0]
	for _, users := range byNode {
		if _, err := cl.Subscribe(ctx, users[0], feed); err != nil {
			t.Fatal(err)
		}
	}
	before, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}

	nodes[2].kill(t)
	waitForState(t, cl, nodes[2].id, "down")

	ev := reef.Event{Attrs: map[string]string{
		"type": "feed-item", "feed": feed, "title": "t", "link": "http://x.test/item",
	}}
	delivered, err := cl.PublishEvent(ctx, ev)
	if err != nil {
		t.Fatalf("publish with one node down: %v (partial fan-out must succeed)", err)
	}
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2 (the down node's subscriber is unreachable)", delivered)
	}
	after, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if skips := after["cluster_publish_skips"] - before["cluster_publish_skips"]; skips < 1 {
		t.Errorf("cluster_publish_skips advanced by %v, want >= 1: the skipped node must be accounted", skips)
	}
	if partial := after["cluster_publish_partial"] - before["cluster_publish_partial"]; partial < 1 {
		t.Errorf("cluster_publish_partial advanced by %v, want >= 1: a partial publish must be visible", partial)
	}

	nodes[0].kill(t)
	nodes[1].kill(t)
	waitForState(t, cl, nodes[0].id, "down")
	waitForState(t, cl, nodes[1].id, "down")
	if _, err := cl.PublishEvent(ctx, ev); !errors.Is(err, reefcluster.ErrNodeDown) {
		t.Fatalf("publish with all nodes down = %v, want ErrNodeDown", err)
	}
}

// waitForState blocks until the prober reports the node in the wanted
// state.
func waitForState(t *testing.T, cl *reefcluster.Cluster, id, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, s := range cl.Status() {
			if s.Node.ID == id && s.State == want {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("node %s never reached state %q", id, want)
}
