package reefhttp

import (
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"reef/internal/metrics"
	"reef/internal/trace"
)

// This file is the observability middleware of the REST surface: the
// ServeHTTP wrapper that mints/propagates trace IDs and feeds the
// per-route metrics, plus the /v1/metrics exposition and
// /v1/admin/trace span-dump endpoints.

// TraceHeader is the HTTP header carrying a hex trace ID across REST
// and replication calls (re-exported so wire-level callers need not
// import the internal package).
const TraceHeader = trace.Header

// WithMetrics substitutes a shared metrics registry, so a process
// hosting several surfaces (REST handler, stream listener, cluster
// router) exposes them in one /v1/metrics scrape.
func WithMetrics(r *metrics.Registry) HandlerOption {
	return func(h *Handler) { h.metrics = r }
}

// WithTrace substitutes a shared span recorder, so spans recorded by
// the stream data plane and the REST surface land in the same
// /v1/admin/trace ring.
func WithTrace(r *trace.Recorder) HandlerOption {
	return func(h *Handler) { h.tracer = r }
}

// WithStartTime overrides the uptime epoch reported by healthz/readyz
// (reefd passes its process start, which predates handler creation by
// the whole WAL recovery replay).
func WithStartTime(t time.Time) HandlerOption {
	return func(h *Handler) { h.start = t }
}

// Metrics returns the handler's registry, for callers instrumenting
// adjacent components into the same scrape.
func (h *Handler) Metrics() *metrics.Registry { return h.metrics }

// Tracer returns the handler's span recorder.
func (h *Handler) Tracer() *trace.Recorder { return h.tracer }

var (
	versionOnce sync.Once
	versionStr  string
)

// Version reports the serving build: the main module version from
// debug/buildinfo, with the stamped VCS revision (shortened) appended
// when present, or "devel" when nothing is stamped.
func Version() string {
	versionOnce.Do(func() {
		versionStr = "devel"
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			versionStr = v
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				rev := s.Value
				if len(rev) > 12 {
					rev = rev[:12]
				}
				versionStr += "+" + rev
				break
			}
		}
	})
	return versionStr
}

func (h *Handler) uptimeSeconds() float64 {
	if h.start.IsZero() {
		return 0
	}
	return time.Since(h.start).Seconds()
}

// statusWriter captures the status code for the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// probeRoutes are scraped or polled continuously; the middleware never
// mints trace IDs for them (an incoming X-Reef-Trace still propagates),
// keeping probe noise out of the span ring.
var probeRoutes = map[string]bool{
	"healthz": true, "readyz": true, "metrics": true, "admin.trace": true,
}

// ServeHTTP implements http.Handler: the observability middleware
// around dispatch. It resolves the trace ID (the X-Reef-Trace request
// header when present, a freshly minted ID otherwise — except on probe
// routes), threads it through the request context, echoes it on the
// response, and records one span plus the per-route latency histogram,
// status-class counter and in-flight gauge.
func (h *Handler) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	rest, ok := strings.CutPrefix(req.URL.EscapedPath(), "/v1/")
	if !ok {
		h.writeError(rw, http.StatusNotFound, CodeNotFound, "unknown path "+req.URL.Path)
		return
	}
	seg := strings.Split(strings.Trim(rest, "/"), "/")
	route := routeLabel(seg)

	id, traced := trace.Parse(req.Header.Get(trace.Header))
	if !traced && !probeRoutes[route] {
		id, traced = trace.NewID(), true
	}
	if traced {
		req = req.WithContext(trace.NewContext(req.Context(), id))
		rw.Header().Set(trace.Header, id.String())
	}

	sw := &statusWriter{ResponseWriter: rw}
	var inFlight *metrics.Gauge
	start := time.Now()
	if h.metrics != nil {
		inFlight = h.metrics.Gauge(metrics.HTTPInFlight.Name)
		inFlight.Add(1)
	}

	h.dispatch(sw, req, seg)

	elapsed := time.Since(start)
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	if h.metrics != nil {
		inFlight.Add(-1)
		routeLbl := metrics.Label{Key: "route", Value: route}
		h.metrics.Histogram(metrics.LabeledName(metrics.HTTPRequestSeconds, routeLbl)).
			Observe(elapsed.Seconds())
		h.metrics.Counter(metrics.LabeledName(metrics.HTTPRequests, routeLbl,
			metrics.Label{Key: "class", Value: strconv.Itoa(status/100) + "xx"})).Inc()
	}
	if traced {
		errStr := ""
		if status >= 400 {
			errStr = "HTTP " + strconv.Itoa(status)
		}
		h.tracer.Record(trace.Span{
			Trace: id, Op: "http." + route, Node: h.nodeID, Shard: -1,
			Start: start, Duration: elapsed, Err: errStr,
		})
		if h.metrics != nil {
			h.metrics.Counter(metrics.TraceSpans.Name).Inc()
		}
	}
}

// routeLabel collapses a split request path into a bounded route label
// (wildcard segments dropped), mirroring the dispatch switch so every
// served route gets a stable, low-cardinality name.
func routeLabel(seg []string) string {
	switch {
	case len(seg) == 1:
		return seg[0]
	case len(seg) == 2 && (seg[0] == "admin" || seg[0] == "replication"):
		return seg[0] + "." + seg[1]
	case len(seg) == 3 && seg[0] == "subscriptions":
		return "subscriptions." + seg[2]
	case len(seg) == 3 && seg[0] == "recommendations":
		return "recommendations." + seg[2]
	case len(seg) == 3 && seg[0] == "users":
		return "users.subscriptions"
	default:
		return "unknown"
	}
}

// ContentTypeMetrics is the Content-Type of the /v1/metrics exposition.
const ContentTypeMetrics = "text/plain; version=0.0.4; charset=utf-8"

// handleMetrics serves the Prometheus text exposition: the handler's
// registry (HTTP/stream/delivery instrumentation) followed by the
// deployment's Stats() snapshot translated through the constant table
// in internal/metrics. A failing deployment degrades the scrape to
// registry-only rather than failing it: a half-blind scrape beats a
// gap in every series.
func (h *Handler) handleMetrics(rw http.ResponseWriter, req *http.Request) {
	stats, err := h.mergedStats(req.Context())
	if err != nil {
		stats = nil
	}
	rw.Header().Set("Content-Type", ContentTypeMetrics)
	rw.WriteHeader(http.StatusOK)
	if err := metrics.WriteText(rw, h.metrics, stats); err != nil && h.log != nil {
		h.log.Printf("reefhttp: writing metrics exposition: %v", err)
	}
}

// TraceSpan is one span in the /v1/admin/trace dump.
type TraceSpan struct {
	Trace          string `json:"trace"`
	Op             string `json:"op"`
	Node           string `json:"node,omitempty"`
	Shard          int    `json:"shard"`
	StartUnixNano  int64  `json:"start_unix_nano"`
	DurationMicros int64  `json:"duration_micros"`
	Error          string `json:"error,omitempty"`
}

// TraceResponse is the GET /v1/admin/trace body. Total counts every
// span ever recorded on this node, including ones evicted from the
// ring.
type TraceResponse struct {
	Node  string      `json:"node,omitempty"`
	Total int64       `json:"total"`
	Spans []TraceSpan `json:"spans"`
}

// handleTrace dumps the span ring, oldest first. ?trace=HEX filters to
// one trace; ?limit=N keeps the newest N after filtering.
func (h *Handler) handleTrace(rw http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	var filter trace.ID
	if v := q.Get("trace"); v != "" {
		id, ok := trace.Parse(v)
		if !ok {
			h.writeError(rw, http.StatusBadRequest, CodeInvalidArgument, "bad trace parameter: want 32 hex characters")
			return
		}
		filter = id
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			h.writeError(rw, http.StatusBadRequest, CodeInvalidArgument, "bad limit parameter")
			return
		}
		limit = n
	}
	spans := h.tracer.Spans(filter, limit)
	out := TraceResponse{Node: h.nodeID, Total: h.tracer.Total(), Spans: make([]TraceSpan, 0, len(spans))}
	for _, sp := range spans {
		out.Spans = append(out.Spans, TraceSpan{
			Trace:          sp.Trace.String(),
			Op:             sp.Op,
			Node:           sp.Node,
			Shard:          sp.Shard,
			StartUnixNano:  sp.Start.UnixNano(),
			DurationMicros: sp.Duration.Microseconds(),
			Error:          sp.Err,
		})
	}
	h.writeJSON(rw, http.StatusOK, out)
}
