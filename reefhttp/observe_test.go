package reefhttp_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"reef/internal/metrics"
	"reef/internal/trace"
	"reef/reefhttp"
)

// TestMetricsEndpoint scrapes /v1/metrics and checks the exposition is
// well-formed Prometheus text: right Content-Type, every line either a
// comment or a "name value" sample, and both registry families (HTTP
// middleware) and translated Stats() families present.
func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)

	// A traced request first, so the middleware has something to report.
	resp, _, _ := do(t, "GET", srv.URL+"/v1/stats", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats = %d", resp.StatusCode)
	}

	resp, _, body := do(t, "GET", srv.URL+"/v1/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != reefhttp.ContentTypeMetrics {
		t.Errorf("Content-Type = %q, want %q", ct, reefhttp.ContentTypeMetrics)
	}
	for _, want := range []string{
		"# TYPE " + metrics.ClicksStored.Name + " gauge",
		metrics.Shards.Name + " ",
		metrics.HTTPRequests.Name + `{class="2xx",route="stats"} 1`,
		metrics.HTTPRequestSeconds.Name + `_bucket{route="stats",le="+Inf"} 1`,
		metrics.HTTPInFlight.Name,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

// TestTraceMintEchoAndDump pins the trace lifecycle on one node: a
// request without X-Reef-Trace gets a minted ID echoed back, a request
// with the header keeps its ID, and /v1/admin/trace?trace= returns the
// span recorded under it.
func TestTraceMintEchoAndDump(t *testing.T) {
	srv, _ := newTestServer(t)

	resp, _, _ := do(t, "GET", srv.URL+"/v1/stats", "")
	minted := resp.Header.Get(reefhttp.TraceHeader)
	if _, ok := trace.Parse(minted); !ok {
		t.Fatalf("no trace ID minted: header = %q", minted)
	}

	req, _ := http.NewRequest("GET", srv.URL+"/v1/stats", nil)
	want := trace.NewID()
	req.Header.Set(reefhttp.TraceHeader, want.String())
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get(reefhttp.TraceHeader); got != want.String() {
		t.Fatalf("propagated trace echoed as %q, want %q", got, want)
	}

	resp, _, body := do(t, "GET", srv.URL+"/v1/admin/trace?trace="+want.String(), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace dump = %d: %s", resp.StatusCode, body)
	}
	var dump reefhttp.TraceResponse
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Spans) != 1 || dump.Spans[0].Op != "http.stats" || dump.Spans[0].Trace != want.String() {
		t.Fatalf("dump = %+v, want one http.stats span under %s", dump, want)
	}
	if dump.Total < 2 {
		t.Errorf("Total = %d, want >= 2 (minted + propagated)", dump.Total)
	}
}

// TestProbeRoutesNotTraced: scrape/probe endpoints must not mint IDs
// (they would wash real traces out of the ring), but still honor an
// explicitly attached one.
func TestProbeRoutesNotTraced(t *testing.T) {
	srv, _ := newTestServer(t)
	for _, path := range []string{"/v1/healthz", "/v1/readyz", "/v1/metrics", "/v1/admin/trace"} {
		resp, _, _ := do(t, "GET", srv.URL+path, "")
		if got := resp.Header.Get(reefhttp.TraceHeader); got != "" {
			t.Errorf("%s minted trace %q, probes must not", path, got)
		}
	}
	req, _ := http.NewRequest("GET", srv.URL+"/v1/healthz", nil)
	id := trace.NewID()
	req.Header.Set(reefhttp.TraceHeader, id.String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(reefhttp.TraceHeader); got != id.String() {
		t.Errorf("healthz with explicit trace echoed %q, want %q", got, id)
	}
}

func TestTraceEndpointBadParams(t *testing.T) {
	srv, _ := newTestServer(t)
	for _, q := range []string{"?trace=nothex", "?trace=" + strings.Repeat("0", 32), "?limit=-1", "?limit=x"} {
		resp, envelope, _ := do(t, "GET", srv.URL+"/v1/admin/trace"+q, "")
		if resp.StatusCode != http.StatusBadRequest || envelope.Error.Code != reefhttp.CodeInvalidArgument {
			t.Errorf("trace%s = (%d, %q), want 400 invalid_argument", q, resp.StatusCode, envelope.Error.Code)
		}
	}
}

// TestHealthVersionUptime: both probes carry the build version and an
// uptime measured from the configured start time.
func TestHealthVersionUptime(t *testing.T) {
	start := time.Now().Add(-time.Minute)
	srv, _ := newTestServer(t, reefhttp.WithStartTime(start))

	_, _, body := do(t, "GET", srv.URL+"/v1/healthz", "")
	var health reefhttp.HealthResponse
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if health.Version == "" {
		t.Error("healthz has no version")
	}
	if health.UptimeSeconds < 59 {
		t.Errorf("healthz uptime = %v, want >= 59s", health.UptimeSeconds)
	}

	_, _, body = do(t, "GET", srv.URL+"/v1/readyz", "")
	var ready reefhttp.ReadyResponse
	if err := json.Unmarshal([]byte(body), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Version != health.Version || ready.UptimeSeconds < 59 {
		t.Errorf("readyz = (%q, %v), want version %q and uptime >= 59s",
			ready.Version, ready.UptimeSeconds, health.Version)
	}
}

// TestSharedRegistryAndRecorder: WithMetrics/WithTrace substitute
// process-wide instances, so spans and counters recorded by adjacent
// components surface through this handler's endpoints.
func TestSharedRegistryAndRecorder(t *testing.T) {
	reg := metrics.NewRegistry()
	rec := trace.NewRecorder(8)
	srv, _ := newTestServer(t, reefhttp.WithMetrics(reg), reefhttp.WithTrace(rec))

	id := trace.NewID()
	rec.Record(trace.Span{Trace: id, Op: "stream.publish", Shard: 2, Start: time.Now()})
	reg.Counter(metrics.StreamFramesIn.Name).Add(7)

	_, _, body := do(t, "GET", srv.URL+"/v1/metrics", "")
	if !strings.Contains(body, metrics.StreamFramesIn.Name+" 7") {
		t.Errorf("shared registry counter missing from scrape:\n%s", body)
	}
	_, _, body = do(t, "GET", srv.URL+"/v1/admin/trace?trace="+id.String(), "")
	var dump reefhttp.TraceResponse
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Spans) != 1 || dump.Spans[0].Op != "stream.publish" || dump.Spans[0].Shard != 2 {
		t.Fatalf("dump = %+v, want the stream.publish span", dump)
	}
}

// TestStatusClassCounters drives a 2xx and a 4xx against the same
// route and checks the class labels split the counter.
func TestStatusClassCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	srv, _ := newTestServer(t, reefhttp.WithMetrics(reg))

	do(t, "GET", srv.URL+"/v1/stats", "")
	do(t, "POST", srv.URL+"/v1/stats", "{}") // 405

	_, _, body := do(t, "GET", srv.URL+"/v1/metrics", "")
	for _, want := range []string{
		metrics.HTTPRequests.Name + `{class="2xx",route="stats"} 1`,
		metrics.HTTPRequests.Name + `{class="4xx",route="stats"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q:\n%s", want, body)
		}
	}
}
