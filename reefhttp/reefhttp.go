// Package reefhttp exposes a reef.Deployment over a versioned REST
// surface — the successor of the prototype's 3-endpoint "LAMP" interface
// (paper §3). Every route lives under /v1/, every response carries
// Content-Type: application/json, wrong methods get 405 with an Allow
// header, and every error is a consistent JSON envelope:
//
//	{"error": {"code": "not_found", "message": "..."}}
//
// Routes:
//
//	POST   /v1/clicks                          ingest a click batch
//	POST   /v1/events                          publish one event
//	POST   /v1/events:batch                    publish an event batch
//	GET    /v1/users/{user}/subscriptions      list live subscriptions
//	PUT    /v1/users/{user}/subscriptions      place a feed subscription
//	DELETE /v1/users/{user}/subscriptions      remove one (?feed=URL)
//	GET    /v1/subscriptions/{id}/events       lease retained events (?user=U&max=N&wait=D long-poll)
//	POST   /v1/subscriptions/{id}/ack          ack/nack a delivery cursor
//	GET    /v1/admin/deadletter                inspect dead letters (?user=U&subscription=S)
//	POST   /v1/admin/deadletter                drain dead letters (body: {"user","subscription"})
//	GET    /v1/recommendations?user=U          list pending recommendations
//	POST   /v1/recommendations/{id}/accept     execute one   (body: {"user":U})
//	POST   /v1/recommendations/{id}/reject     discard one   (body: {"user":U})
//	GET    /v1/stats                           counters snapshot
//	GET    /v1/metrics                         Prometheus text exposition
//	GET    /v1/healthz                         liveness + shard count + backend
//	GET    /v1/readyz                          readiness (see Readiness)
//	GET    /v1/admin/trace                     span ring dump (?trace=HEX&limit=N)
//	GET    /v1/admin/storage                   persistence backend state
//	POST   /v1/admin/snapshot                  force a compacting snapshot
//	POST   /v1/replication/records             ingest a peer's WAL batch
//	POST   /v1/replication/snapshot            ingest a peer's state cut
//	GET    /v1/admin/replication               replication stream status
//
// The admin storage/snapshot endpoints require the deployment to
// implement reef.Persister; the events/ack/deadletter endpoints require
// reef.ReliableDeliverer; the replication endpoints require a manager
// mounted via WithReplication. Against a deployment lacking the surface
// they answer 501 with code "unsupported".
//
// Liveness and readiness are distinct probes: /v1/healthz answers 200
// whenever the process serves at all, while /v1/readyz answers 200 only
// when the deployment should receive new work — 503 with status
// "starting" until WAL recovery replay completes, and 503 with status
// "draining" once a shutdown began. A cluster router routes on readyz,
// so a node stops receiving traffic before its listener disappears.
// Unlike every other route, readyz keeps the ReadyResponse body shape
// on 503 too (not the error envelope): the prober needs the status
// string to tell a draining node from a broken one.
package reefhttp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"reef"
	"reef/internal/metrics"
	"reef/internal/trace"
)

// maxBodyBytes bounds request bodies (the click batch is the largest).
const maxBodyBytes = 16 << 20

// Error codes carried in the envelope; the client SDK maps them back to
// the reef sentinel errors.
const (
	CodeInvalidArgument  = "invalid_argument"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeUnavailable      = "unavailable"
	CodeUnsupported      = "unsupported"
	CodeInternal         = "internal"
)

// ErrorBody is the JSON error envelope.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries the machine-readable code and human message.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Wire request/response shapes.
type (
	// ClicksRequest is the POST /v1/clicks body.
	ClicksRequest struct {
		Clicks []reef.Click `json:"clicks"`
	}
	// ClicksResponse acknowledges an ingested batch.
	ClicksResponse struct {
		Accepted int `json:"accepted"`
	}
	// EventResponse reports local deliveries of a published event.
	EventResponse struct {
		Delivered int `json:"delivered"`
	}
	// EventsBatchRequest is the POST /v1/events:batch body.
	EventsBatchRequest struct {
		Events []reef.Event `json:"events"`
	}
	// SubscriptionsResponse lists a user's live subscriptions.
	SubscriptionsResponse struct {
		Subscriptions []reef.Subscription `json:"subscriptions"`
	}
	// SubscribeRequest is the PUT subscriptions body. Delivery is
	// optional; omitting it places a best-effort subscription.
	SubscribeRequest struct {
		FeedURL  string          `json:"feed_url"`
		Delivery *DeliveryConfig `json:"delivery,omitempty"`
	}
	// DeliveryConfig selects a subscription's delivery tier on the wire.
	DeliveryConfig struct {
		// Guarantee is "best_effort" or "at_least_once".
		Guarantee   string `json:"guarantee"`
		OrderingKey string `json:"ordering_key,omitempty"`
		// AckTimeoutMS and MaxAttempts are at-least-once tuning; zero
		// keeps the deployment defaults.
		AckTimeoutMS int64 `json:"ack_timeout_ms,omitempty"`
		MaxAttempts  int   `json:"max_attempts,omitempty"`
	}
	// AckRequest is the POST /v1/subscriptions/{id}/ack body. Seq is the
	// cumulative cursor position; Nack asks for immediate redelivery
	// instead of advancing the cursor.
	AckRequest struct {
		User string `json:"user"`
		Seq  int64  `json:"seq"`
		Nack bool   `json:"nack,omitempty"`
	}
	// AckResponse acknowledges a cursor call.
	AckResponse struct {
		ID     string `json:"id"`
		Seq    int64  `json:"seq"`
		Action string `json:"action"` // "ack" or "nack"
	}
	// DeliveredResponse carries leased events from the fetch endpoint.
	DeliveredResponse struct {
		Events []reef.DeliveredEvent `json:"events"`
	}
	// DeadLetterResponse lists dead-lettered events (GET) or the drained
	// batch (POST).
	DeadLetterResponse struct {
		DeadLetters []reef.DeadLetter `json:"dead_letters"`
	}
	// DeadLetterDrainRequest is the POST /v1/admin/deadletter body. An
	// empty Subscription drains every reliable subscription of the user.
	DeadLetterDrainRequest struct {
		User         string `json:"user"`
		Subscription string `json:"subscription,omitempty"`
	}
	// RecommendationsResponse lists pending recommendations.
	RecommendationsResponse struct {
		Recommendations []reef.Recommendation `json:"recommendations"`
	}
	// DecisionRequest is the accept/reject body.
	DecisionRequest struct {
		User string `json:"user"`
	}
	// StatsResponse snapshots deployment counters.
	StatsResponse struct {
		Stats reef.Stats `json:"stats"`
	}
	// StorageResponse reports the persistence backend's state (admin
	// storage and snapshot endpoints).
	StorageResponse struct {
		Storage reef.StorageInfo `json:"storage"`
	}
	// HealthResponse is the GET /v1/healthz body: liveness plus the
	// deployment's shape — how many engine shards serve it and which
	// storage backend persists it ("memory" when nothing does). Node is
	// the server's cluster identity (reefd -node-id), empty standalone.
	// StreamAddr advertises the node's binary ingest listener (reefd
	// -stream-addr) when one is running, so operators and tooling can
	// discover the publish data plane from the control plane.
	HealthResponse struct {
		Status     string `json:"status"`
		Shards     int    `json:"shards"`
		Backend    string `json:"backend"`
		Node       string `json:"node,omitempty"`
		StreamAddr string `json:"stream_addr,omitempty"`
		// Version identifies the serving build (module version plus VCS
		// revision when stamped); UptimeSeconds is time since the server
		// came up. Both also appear on readyz, so a prober can spot a
		// restarted or upgraded node across consecutive probes.
		Version       string  `json:"version,omitempty"`
		UptimeSeconds float64 `json:"uptime_seconds,omitempty"`
	}
	// ReadyResponse is the GET /v1/readyz body, served with this shape
	// at every status code. Status is "ready" (200), "starting" or
	// "draining" (both 503).
	ReadyResponse struct {
		Status        string  `json:"status"`
		Node          string  `json:"node,omitempty"`
		Version       string  `json:"version,omitempty"`
		UptimeSeconds float64 `json:"uptime_seconds,omitempty"`
	}
)

// Readiness state names carried in ReadyResponse.Status.
const (
	ReadyStarting = "starting"
	ReadyOK       = "ready"
	ReadyDraining = "draining"
)

// Readiness is the three-state gate behind /v1/readyz. It starts in
// "starting" (503): a recovering node answers probes — instead of
// refusing connections — without being routed to. SetReady flips it to
// 200 once recovery replay completes; SetDraining flips it back to 503
// when a shutdown begins, so a cluster prober stops routing to the node
// before the listener closes. Safe for concurrent use.
type Readiness struct {
	state atomic.Int32 // 0 starting, 1 ready, 2 draining
}

// NewReadiness returns a gate in the "starting" state.
func NewReadiness() *Readiness { return &Readiness{} }

// SetReady marks recovery complete: readyz answers 200.
func (r *Readiness) SetReady() { r.state.Store(1) }

// SetDraining marks a shutdown in progress: readyz answers 503 again.
func (r *Readiness) SetDraining() { r.state.Store(2) }

// State reports the current status string.
func (r *Readiness) State() string {
	switch r.state.Load() {
	case 1:
		return ReadyOK
	case 2:
		return ReadyDraining
	default:
		return ReadyStarting
	}
}

// ReadyzHandler serves GET /v1/readyz from a gate alone, for servers
// that must answer readiness probes before their deployment exists:
// reefd starts listening before WAL recovery replay completes, so a
// restarting node answers "starting" (503) instead of refusing
// connections. Mounted on a mux at the exact path, it takes precedence
// over the full Handler's /v1/ prefix route.
func ReadyzHandler(r *Readiness, nodeID string) http.Handler {
	h := &Handler{ready: r, nodeID: nodeID, start: time.Now()}
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		h.route(rw, req, "GET", h.handleReadyz)
	})
}

// Handler serves the REST surface over any reef.Deployment.
type Handler struct {
	dep        reef.Deployment
	log        *log.Logger
	ready      *Readiness
	nodeID     string
	streamAddr string
	repl       Replicator
	metrics    *metrics.Registry
	tracer     *trace.Recorder
	start      time.Time
}

var _ http.Handler = (*Handler)(nil)

// HandlerOption configures optional handler behavior.
type HandlerOption func(*Handler)

// WithReadiness wires a readiness gate behind /v1/readyz. Without one,
// readyz mirrors liveness: 200 whenever the deployment serves.
func WithReadiness(r *Readiness) HandlerOption {
	return func(h *Handler) { h.ready = r }
}

// WithNodeID stamps the server's cluster identity into the healthz and
// readyz bodies, so a prober can detect a probe answered by the wrong
// process on a reused address.
func WithNodeID(id string) HandlerOption {
	return func(h *Handler) { h.nodeID = id }
}

// WithStreamAddr advertises the node's binary ingest listener address
// in the healthz body.
func WithStreamAddr(addr string) HandlerOption {
	return func(h *Handler) { h.streamAddr = addr }
}

// NewHandler mounts the /v1 surface over the deployment. A nil logger
// discards encode-failure diagnostics. Every handler carries a metrics
// registry (per-route instrumentation, served at /v1/metrics) and a
// trace span ring (served at /v1/admin/trace); WithMetrics/WithTrace
// substitute shared instances so reefd's stream listener and REST
// surface report into the same ring and registry.
func NewHandler(dep reef.Deployment, logger *log.Logger, opts ...HandlerOption) *Handler {
	h := &Handler{dep: dep, log: logger, start: time.Now()}
	for _, o := range opts {
		o(h)
	}
	if h.metrics == nil {
		h.metrics = metrics.NewRegistry()
	}
	if h.tracer == nil {
		h.tracer = trace.NewRecorder(0)
	}
	return h
}

// dispatch routes one request with explicit matching so unknown paths
// and wrong methods get the same JSON envelope as handler errors.
// Routing splits the escaped path, so identifiers containing %2F (e.g.
// user IDs with slashes, sent path-escaped by reefclient) stay one
// segment; wildcard segments are unescaped before use. ServeHTTP (in
// observe.go) wraps this with the tracing and metrics middleware.
func (h *Handler) dispatch(rw http.ResponseWriter, req *http.Request, seg []string) {
	switch {
	case len(seg) == 1 && seg[0] == "clicks":
		h.route(rw, req, "POST", h.handleClicks)
	case len(seg) == 1 && seg[0] == "events":
		h.route(rw, req, "POST", h.handleEvents)
	case len(seg) == 1 && seg[0] == "events:batch":
		h.route(rw, req, "POST", h.handleEventsBatch)
	case len(seg) == 1 && seg[0] == "stats":
		h.route(rw, req, "GET", h.handleStats)
	case len(seg) == 1 && seg[0] == "metrics":
		h.route(rw, req, "GET", h.handleMetrics)
	case len(seg) == 2 && seg[0] == "admin" && seg[1] == "trace":
		h.route(rw, req, "GET", h.handleTrace)
	case len(seg) == 1 && seg[0] == "healthz":
		h.route(rw, req, "GET", h.handleHealthz)
	case len(seg) == 1 && seg[0] == "readyz":
		h.route(rw, req, "GET", h.handleReadyz)
	case len(seg) == 1 && seg[0] == "recommendations":
		h.route(rw, req, "GET", h.handleRecommendations)
	case len(seg) == 2 && seg[0] == "admin" && seg[1] == "deadletter":
		h.route(rw, req, "GET POST", h.handleDeadLetter)
	case len(seg) == 3 && seg[0] == "subscriptions" && (seg[2] == "ack" || seg[2] == "events"):
		id, ok := h.pathSegment(rw, seg[1])
		if !ok {
			return
		}
		if seg[2] == "ack" {
			h.route(rw, req, "POST", func(rw http.ResponseWriter, req *http.Request) {
				h.handleAck(rw, req, id)
			})
		} else {
			h.route(rw, req, "GET", func(rw http.ResponseWriter, req *http.Request) {
				h.handleFetchEvents(rw, req, id)
			})
		}
	case len(seg) == 2 && seg[0] == "replication" && seg[1] == "records":
		h.route(rw, req, "POST", h.handleReplicationRecords)
	case len(seg) == 2 && seg[0] == "replication" && seg[1] == "snapshot":
		h.route(rw, req, "POST", h.handleReplicationSnapshot)
	case len(seg) == 2 && seg[0] == "admin" && seg[1] == "replication":
		h.route(rw, req, "GET", h.handleReplicationStatus)
	case len(seg) == 2 && seg[0] == "admin" && seg[1] == "storage":
		h.route(rw, req, "GET", h.handleStorage)
	case len(seg) == 2 && seg[0] == "admin" && seg[1] == "snapshot":
		h.route(rw, req, "POST", h.handleSnapshot)
	case len(seg) == 3 && seg[0] == "recommendations" && (seg[2] == "accept" || seg[2] == "reject"):
		id, ok := h.pathSegment(rw, seg[1])
		if !ok {
			return
		}
		h.route(rw, req, "POST", func(rw http.ResponseWriter, req *http.Request) {
			h.handleDecision(rw, req, id, seg[2])
		})
	case len(seg) == 3 && seg[0] == "users" && seg[2] == "subscriptions":
		user, ok := h.pathSegment(rw, seg[1])
		if !ok {
			return
		}
		h.route(rw, req, "GET PUT DELETE", func(rw http.ResponseWriter, req *http.Request) {
			h.handleSubscriptions(rw, req, user)
		})
	default:
		h.writeError(rw, http.StatusNotFound, CodeNotFound, "unknown path "+req.URL.Path)
	}
}

// pathSegment unescapes one wildcard path segment, writing the error
// envelope and returning false on malformed escapes.
func (h *Handler) pathSegment(rw http.ResponseWriter, escaped string) (string, bool) {
	v, err := url.PathUnescape(escaped)
	if err != nil {
		h.writeError(rw, http.StatusBadRequest, CodeInvalidArgument, "bad path segment: "+err.Error())
		return "", false
	}
	return v, true
}

// route enforces the allowed methods before dispatching.
func (h *Handler) route(rw http.ResponseWriter, req *http.Request, allowed string, fn http.HandlerFunc) {
	for _, m := range strings.Fields(allowed) {
		if req.Method == m {
			fn(rw, req)
			return
		}
	}
	rw.Header().Set("Allow", strings.Join(strings.Fields(allowed), ", "))
	h.writeError(rw, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
		req.Method+" not allowed; use "+allowed)
}

func (h *Handler) handleClicks(rw http.ResponseWriter, req *http.Request) {
	var body ClicksRequest
	if !h.readJSON(rw, req, &body) {
		return
	}
	// An empty batch is a no-op, not an error — in-process deployments
	// return (0, nil) for it, and remote callers get the same behavior.
	n, err := h.dep.IngestClicks(req.Context(), body.Clicks)
	if err != nil {
		h.writeDeploymentError(rw, err)
		return
	}
	h.writeJSON(rw, http.StatusAccepted, ClicksResponse{Accepted: n})
}

func (h *Handler) handleEvents(rw http.ResponseWriter, req *http.Request) {
	var ev reef.Event
	if !h.readJSON(rw, req, &ev) {
		return
	}
	n, err := h.dep.PublishEvent(req.Context(), ev)
	if err != nil {
		h.writeDeploymentError(rw, err)
		return
	}
	h.writeJSON(rw, http.StatusOK, EventResponse{Delivered: n})
}

func (h *Handler) handleEventsBatch(rw http.ResponseWriter, req *http.Request) {
	var body EventsBatchRequest
	if !h.readJSON(rw, req, &body) {
		return
	}
	// An empty batch is a no-op, mirroring the in-process deployments.
	n, err := h.dep.PublishBatch(req.Context(), body.Events)
	if err != nil {
		h.writeDeploymentError(rw, err)
		return
	}
	h.writeJSON(rw, http.StatusOK, EventResponse{Delivered: n})
}

func (h *Handler) handleSubscriptions(rw http.ResponseWriter, req *http.Request, user string) {
	ctx := req.Context()
	switch req.Method {
	case http.MethodGet:
		subs, err := h.dep.Subscriptions(ctx, user)
		if err != nil {
			h.writeDeploymentError(rw, err)
			return
		}
		h.writeJSON(rw, http.StatusOK, SubscriptionsResponse{Subscriptions: subs})
	case http.MethodPut:
		var body SubscribeRequest
		if !h.readJSON(rw, req, &body) {
			return
		}
		opts, err := subscribeOptions(body.Delivery)
		if err != nil {
			h.writeDeploymentError(rw, err)
			return
		}
		sub, err := h.dep.Subscribe(ctx, user, body.FeedURL, opts...)
		if err != nil {
			h.writeDeploymentError(rw, err)
			return
		}
		h.writeJSON(rw, http.StatusCreated, sub)
	case http.MethodDelete:
		feed := req.URL.Query().Get("feed")
		if feed == "" {
			h.writeError(rw, http.StatusBadRequest, CodeInvalidArgument, "missing feed parameter")
			return
		}
		if err := h.dep.Unsubscribe(ctx, user, feed); err != nil {
			h.writeDeploymentError(rw, err)
			return
		}
		h.writeJSON(rw, http.StatusOK, struct {
			Deleted string `json:"deleted"`
		}{Deleted: feed})
	}
}

func (h *Handler) handleRecommendations(rw http.ResponseWriter, req *http.Request) {
	user := req.URL.Query().Get("user")
	if user == "" {
		h.writeError(rw, http.StatusBadRequest, CodeInvalidArgument, "missing user parameter")
		return
	}
	recs, err := h.dep.Recommendations(req.Context(), user)
	if err != nil {
		h.writeDeploymentError(rw, err)
		return
	}
	h.writeJSON(rw, http.StatusOK, RecommendationsResponse{Recommendations: recs})
}

func (h *Handler) handleDecision(rw http.ResponseWriter, req *http.Request, id, verb string) {
	var body DecisionRequest
	if !h.readJSON(rw, req, &body) {
		return
	}
	var err error
	if verb == "accept" {
		err = h.dep.AcceptRecommendation(req.Context(), body.User, id)
	} else {
		err = h.dep.RejectRecommendation(req.Context(), body.User, id)
	}
	if err != nil {
		h.writeDeploymentError(rw, err)
		return
	}
	h.writeJSON(rw, http.StatusOK, struct {
		ID     string `json:"id"`
		Action string `json:"action"`
	}{ID: id, Action: verb})
}

func (h *Handler) handleStats(rw http.ResponseWriter, req *http.Request) {
	stats, err := h.mergedStats(req.Context())
	if err != nil {
		h.writeDeploymentError(rw, err)
		return
	}
	h.writeJSON(rw, http.StatusOK, StatsResponse{Stats: stats})
}

// mergedStats snapshots the deployment, merging in the node-scoped
// replication gauges when a manager is mounted, so one scrape covers
// both.
func (h *Handler) mergedStats(ctx context.Context) (reef.Stats, error) {
	stats, err := h.dep.Stats(ctx)
	if err != nil {
		return nil, err
	}
	if h.repl != nil {
		merged := make(reef.Stats, len(stats))
		for k, v := range stats {
			merged[k] = v
		}
		for k, v := range h.repl.Stats() {
			merged[k] = v
		}
		stats = merged
	}
	return stats, nil
}

// handleHealthz answers the liveness probe. A closed (or otherwise
// failing) deployment turns the probe into the matching error envelope,
// so an orchestrator sees 503 once the deployment stops serving.
func (h *Handler) handleHealthz(rw http.ResponseWriter, req *http.Request) {
	out := HealthResponse{Status: "ok", Shards: 1, Backend: "memory", Node: h.nodeID,
		StreamAddr: h.streamAddr, Version: Version(), UptimeSeconds: h.uptimeSeconds()}
	if s, ok := h.dep.(reef.Sharder); ok {
		out.Shards = s.ShardCount()
	}
	if p, ok := h.dep.(reef.Persister); ok {
		info, err := p.StorageInfo(req.Context())
		if err != nil {
			h.writeDeploymentError(rw, err)
			return
		}
		out.Backend = info.Backend
	} else {
		// Liveness still needs a real call against the deployment.
		if _, err := h.dep.Stats(req.Context()); err != nil {
			h.writeDeploymentError(rw, err)
			return
		}
	}
	h.writeJSON(rw, http.StatusOK, out)
}

// handleReadyz answers the readiness probe. With a Readiness gate the
// gate alone decides; without one, readiness mirrors liveness. Both the
// 200 and 503 answers carry the ReadyResponse shape (not the error
// envelope) so probers can read the status string.
func (h *Handler) handleReadyz(rw http.ResponseWriter, req *http.Request) {
	out := ReadyResponse{Status: ReadyOK, Node: h.nodeID, Version: Version(), UptimeSeconds: h.uptimeSeconds()}
	if h.ready != nil {
		out.Status = h.ready.State()
	} else if _, err := h.dep.Stats(req.Context()); err != nil {
		out.Status = ReadyDraining
	}
	status := http.StatusOK
	if out.Status != ReadyOK {
		status = http.StatusServiceUnavailable
	}
	h.writeJSON(rw, status, out)
}

// subscribeOptions translates the wire delivery config into subscribe
// options. Unknown guarantee names fail with the rich *ConfigError the
// reef package builds.
func subscribeOptions(d *DeliveryConfig) ([]reef.SubscribeOption, error) {
	if d == nil {
		return nil, nil
	}
	var opts []reef.SubscribeOption
	if d.Guarantee != "" {
		g, err := reef.ParseDeliveryGuarantee(d.Guarantee)
		if err != nil {
			return nil, err
		}
		opts = append(opts, reef.WithGuarantee(g))
	}
	if d.OrderingKey != "" {
		opts = append(opts, reef.WithOrderingKey(d.OrderingKey))
	}
	if d.AckTimeoutMS != 0 {
		opts = append(opts, reef.WithAckTimeout(time.Duration(d.AckTimeoutMS)*time.Millisecond))
	}
	if d.MaxAttempts != 0 {
		opts = append(opts, reef.WithMaxAttempts(d.MaxAttempts))
	}
	return opts, nil
}

// reliable unwraps the deployment's reliable-delivery surface, answering
// the 501 envelope when it has none.
func (h *Handler) reliable(rw http.ResponseWriter) (reef.ReliableDeliverer, bool) {
	r, ok := h.dep.(reef.ReliableDeliverer)
	if !ok {
		h.writeDeploymentError(rw, fmt.Errorf("%w: deployment has no reliable-delivery surface", reef.ErrUnsupported))
		return nil, false
	}
	return r, true
}

// handleAck advances (or nacks against) one subscription's delivery
// cursor.
func (h *Handler) handleAck(rw http.ResponseWriter, req *http.Request, id string) {
	r, ok := h.reliable(rw)
	if !ok {
		return
	}
	var body AckRequest
	if !h.readJSON(rw, req, &body) {
		return
	}
	if err := r.Ack(req.Context(), body.User, id, body.Seq, body.Nack); err != nil {
		h.writeDeploymentError(rw, err)
		return
	}
	action := "ack"
	if body.Nack {
		action = "nack"
	}
	h.writeJSON(rw, http.StatusOK, AckResponse{ID: id, Seq: body.Seq, Action: action})
}

// handleFetchEvents leases retained events of one reliable subscription.
func (h *Handler) handleFetchEvents(rw http.ResponseWriter, req *http.Request, id string) {
	r, ok := h.reliable(rw)
	if !ok {
		return
	}
	q := req.URL.Query()
	user := q.Get("user")
	if user == "" {
		h.writeError(rw, http.StatusBadRequest, CodeInvalidArgument, "missing user parameter")
		return
	}
	max := 0
	if v := q.Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			h.writeError(rw, http.StatusBadRequest, CodeInvalidArgument, "bad max parameter: "+err.Error())
			return
		}
		max = n
	}
	var wait time.Duration
	if v := q.Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			h.writeError(rw, http.StatusBadRequest, CodeInvalidArgument, "bad wait parameter: "+err.Error())
			return
		}
		if d < 0 {
			h.writeError(rw, http.StatusBadRequest, CodeInvalidArgument, "bad wait parameter: negative duration")
			return
		}
		if d > MaxFetchWait {
			h.writeError(rw, http.StatusBadRequest, CodeInvalidArgument,
				fmt.Sprintf("bad wait parameter: %s exceeds the %s maximum", d, MaxFetchWait))
			return
		}
		wait = d
	}
	evs, err := h.fetchEventsWait(req.Context(), r, user, id, max, wait)
	if err != nil {
		h.writeDeploymentError(rw, err)
		return
	}
	h.writeJSON(rw, http.StatusOK, DeliveredResponse{Events: evs})
}

// MaxFetchWait caps the wait= long-poll parameter of the fetch-events
// endpoint, keeping a handler goroutine's lifetime bounded.
const MaxFetchWait = 30 * time.Second

// fetchEventsWait is the bounded long-poll behind wait=: when the first
// fetch comes back empty it parks on the deployment's queue-notify hook
// (the same hook the streaming push path uses) and re-fetches when the
// subscription retains something, until the wait budget runs out. A
// deployment without the hook falls back to a coarse poll tick, so the
// parameter works — just less efficiently — against any reliable
// deployment.
func (h *Handler) fetchEventsWait(ctx context.Context, r reef.ReliableDeliverer, user, id string, max int, wait time.Duration) ([]reef.DeliveredEvent, error) {
	evs, err := r.FetchEvents(ctx, user, id, max)
	if err != nil || len(evs) > 0 || wait <= 0 {
		return evs, err
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	notify := make(chan struct{}, 1)
	if sd, ok := r.(reef.StreamDeliverer); ok {
		cancel, err := sd.NotifyEvents(user, id, notify)
		if err != nil {
			return nil, err
		}
		defer cancel()
	} else {
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			for {
				select {
				case <-tick.C:
					select {
					case notify <- struct{}{}:
					default:
					}
				case <-stop:
					return
				}
			}
		}()
	}
	for {
		select {
		case <-notify:
		case <-deadline.C:
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		evs, err := r.FetchEvents(ctx, user, id, max)
		if err != nil || len(evs) > 0 {
			return evs, err
		}
	}
}

// handleDeadLetter inspects (GET) or drains (POST) dead-letter queues.
func (h *Handler) handleDeadLetter(rw http.ResponseWriter, req *http.Request) {
	r, ok := h.reliable(rw)
	if !ok {
		return
	}
	var user, subID string
	drain := req.Method == http.MethodPost
	if drain {
		var body DeadLetterDrainRequest
		if !h.readJSON(rw, req, &body) {
			return
		}
		user, subID = body.User, body.Subscription
	} else {
		q := req.URL.Query()
		user, subID = q.Get("user"), q.Get("subscription")
	}
	if user == "" {
		h.writeError(rw, http.StatusBadRequest, CodeInvalidArgument, "missing user parameter")
		return
	}
	var (
		out []reef.DeadLetter
		err error
	)
	if drain {
		out, err = r.DrainDeadLetters(req.Context(), user, subID)
	} else {
		out, err = r.DeadLetters(req.Context(), user, subID)
	}
	if err != nil {
		h.writeDeploymentError(rw, err)
		return
	}
	h.writeJSON(rw, http.StatusOK, DeadLetterResponse{DeadLetters: out})
}

// persister unwraps the deployment's durability surface, answering the
// 501 envelope when it has none.
func (h *Handler) persister(rw http.ResponseWriter) (reef.Persister, bool) {
	p, ok := h.dep.(reef.Persister)
	if !ok {
		h.writeDeploymentError(rw, fmt.Errorf("%w: deployment has no persistence surface", reef.ErrUnsupported))
		return nil, false
	}
	return p, true
}

func (h *Handler) handleStorage(rw http.ResponseWriter, req *http.Request) {
	p, ok := h.persister(rw)
	if !ok {
		return
	}
	info, err := p.StorageInfo(req.Context())
	if err != nil {
		h.writeDeploymentError(rw, err)
		return
	}
	h.writeJSON(rw, http.StatusOK, StorageResponse{Storage: info})
}

func (h *Handler) handleSnapshot(rw http.ResponseWriter, req *http.Request) {
	p, ok := h.persister(rw)
	if !ok {
		return
	}
	info, err := p.Snapshot(req.Context())
	if err != nil {
		h.writeDeploymentError(rw, err)
		return
	}
	h.writeJSON(rw, http.StatusOK, StorageResponse{Storage: info})
}

// readJSON decodes a bounded request body, writing the error envelope and
// returning false on failure.
func (h *Handler) readJSON(rw http.ResponseWriter, req *http.Request, into any) bool {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxBodyBytes))
	if err != nil {
		h.writeError(rw, http.StatusBadRequest, CodeInvalidArgument, "reading body: "+err.Error())
		return false
	}
	if err := json.Unmarshal(body, into); err != nil {
		h.writeError(rw, http.StatusBadRequest, CodeInvalidArgument, "bad JSON: "+err.Error())
		return false
	}
	return true
}

// writeJSON writes a JSON response, checking the encode error.
func (h *Handler) writeJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	if err := json.NewEncoder(rw).Encode(v); err != nil && h.log != nil {
		// The status line is gone; all we can do is record the failure.
		h.log.Printf("reefhttp: encoding %T response: %v", v, err)
	}
}

// writeError writes the JSON error envelope.
func (h *Handler) writeError(rw http.ResponseWriter, status int, code, msg string) {
	h.writeJSON(rw, status, ErrorBody{Error: ErrorDetail{Code: code, Message: msg}})
}

// writeDeploymentError maps reef sentinel errors to status codes.
func (h *Handler) writeDeploymentError(rw http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, reef.ErrInvalidArgument):
		h.writeError(rw, http.StatusBadRequest, CodeInvalidArgument, err.Error())
	case errors.Is(err, reef.ErrNotFound):
		h.writeError(rw, http.StatusNotFound, CodeNotFound, err.Error())
	case errors.Is(err, reef.ErrClosed):
		h.writeError(rw, http.StatusServiceUnavailable, CodeUnavailable, err.Error())
	case errors.Is(err, reef.ErrUnsupported):
		h.writeError(rw, http.StatusNotImplemented, CodeUnsupported, err.Error())
	default:
		h.writeError(rw, http.StatusInternalServerError, CodeInternal, err.Error())
	}
}
