package reefhttp_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"reef"
	"reef/internal/topics"
	"reef/internal/websim"
	"reef/reefhttp"
)

// newTestServer mounts the handler over a durable centralized deployment
// (data dir backed, so the admin endpoints have a real backend).
func newTestServer(t *testing.T, opts ...reefhttp.HandlerOption) (*httptest.Server, *reef.Centralized) {
	t.Helper()
	model := topics.NewModel(21, 4, 10, 12)
	wcfg := websim.DefaultConfig(21, time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC))
	wcfg.NumContentServers = 8
	wcfg.NumAdServers = 2
	wcfg.NumSpamServers = 1
	wcfg.NumMultimediaServers = 1
	web := websim.Generate(wcfg, model)
	dep, err := reef.NewCentralized(
		reef.WithFetcher(web),
		reef.WithDataDir(t.TempDir()),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dep.Close() })
	srv := httptest.NewServer(reefhttp.NewHandler(dep, nil, opts...))
	t.Cleanup(srv.Close)
	return srv, dep
}

// do issues one request and decodes the error envelope (if any).
func do(t *testing.T, method, url, body string) (*http.Response, reefhttp.ErrorBody, string) {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var envelope reefhttp.ErrorBody
	_ = json.Unmarshal(data, &envelope)
	return resp, envelope, string(data)
}

// TestHandlerErrorPaths is the table-driven sweep over every handler's
// failure envelopes: wrong method, bad JSON, invalid arguments, unknown
// users and IDs, and the admin endpoints — paths the happy-path client
// round-trip tests never touch.
func TestHandlerErrorPaths(t *testing.T) {
	srv, _ := newTestServer(t)

	tests := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
		wantAllow  string
	}{
		{"unknown path", "GET", "/v1/nope", "", http.StatusNotFound, reefhttp.CodeNotFound, ""},
		{"path outside v1", "GET", "/v2/stats", "", http.StatusNotFound, reefhttp.CodeNotFound, ""},
		{"deep unknown path", "GET", "/v1/users/u/sidebars", "", http.StatusNotFound, reefhttp.CodeNotFound, ""},

		{"clicks wrong method", "GET", "/v1/clicks", "", http.StatusMethodNotAllowed, reefhttp.CodeMethodNotAllowed, "POST"},
		{"events wrong method", "DELETE", "/v1/events", "", http.StatusMethodNotAllowed, reefhttp.CodeMethodNotAllowed, "POST"},
		{"batch wrong method", "GET", "/v1/events:batch", "", http.StatusMethodNotAllowed, reefhttp.CodeMethodNotAllowed, "POST"},
		{"stats wrong method", "POST", "/v1/stats", "{}", http.StatusMethodNotAllowed, reefhttp.CodeMethodNotAllowed, "GET"},
		{"recommendations wrong method", "POST", "/v1/recommendations", "{}", http.StatusMethodNotAllowed, reefhttp.CodeMethodNotAllowed, "GET"},
		{"subscriptions wrong method", "POST", "/v1/users/u/subscriptions", "{}", http.StatusMethodNotAllowed, reefhttp.CodeMethodNotAllowed, "GET, PUT, DELETE"},
		{"storage wrong method", "POST", "/v1/admin/storage", "{}", http.StatusMethodNotAllowed, reefhttp.CodeMethodNotAllowed, "GET"},
		{"snapshot wrong method", "GET", "/v1/admin/snapshot", "", http.StatusMethodNotAllowed, reefhttp.CodeMethodNotAllowed, "POST"},
		{"decision wrong method", "GET", "/v1/recommendations/r1/accept", "", http.StatusMethodNotAllowed, reefhttp.CodeMethodNotAllowed, "POST"},

		{"clicks bad JSON", "POST", "/v1/clicks", "{not json", http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
		{"events bad JSON", "POST", "/v1/events", "[", http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
		{"batch bad JSON", "POST", "/v1/events:batch", "nope", http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
		{"subscribe bad JSON", "PUT", "/v1/users/u/subscriptions", "{", http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
		{"decision bad JSON", "POST", "/v1/recommendations/r1/accept", "{", http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},

		{"click with empty user", "POST", "/v1/clicks", `{"clicks":[{"user":"","url":"http://a.test/"}]}`, http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
		{"click with empty URL", "POST", "/v1/clicks", `{"clicks":[{"user":"u","url":""}]}`, http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
		{"event without attributes", "POST", "/v1/events", `{"attrs":{}}`, http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
		{"subscribe bad scheme", "PUT", "/v1/users/u/subscriptions", `{"feed_url":"ftp://bad"}`, http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
		{"unsubscribe missing feed param", "DELETE", "/v1/users/u/subscriptions", "", http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
		{"recommendations missing user", "GET", "/v1/recommendations", "", http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
		{"blank user path segment", "GET", "/v1/users/%20/subscriptions", "", http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},

		{"unsubscribe unknown user", "DELETE", "/v1/users/ghost/subscriptions?feed=http%3A%2F%2Ff.test%2Fa.xml", "", http.StatusNotFound, reefhttp.CodeNotFound, ""},
		{"accept unknown recommendation", "POST", "/v1/recommendations/r999/accept", `{"user":"u"}`, http.StatusNotFound, reefhttp.CodeNotFound, ""},
		{"reject unknown recommendation", "POST", "/v1/recommendations/r999/reject", `{"user":"u"}`, http.StatusNotFound, reefhttp.CodeNotFound, ""},
	}

	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			resp, envelope, raw := do(t, tc.method, srv.URL+tc.path, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, raw)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
			if envelope.Error.Code != tc.wantCode {
				t.Errorf("envelope code = %q, want %q (body %s)", envelope.Error.Code, tc.wantCode, raw)
			}
			if envelope.Error.Message == "" {
				t.Error("envelope has no message")
			}
			if tc.wantAllow != "" {
				if allow := resp.Header.Get("Allow"); allow != tc.wantAllow {
					t.Errorf("Allow = %q, want %q", allow, tc.wantAllow)
				}
			}
		})
	}
}

// TestAdminEndpoints drives the happy path of the durability admin
// surface: storage reporting and forced snapshots over a file-backed
// deployment.
func TestAdminEndpoints(t *testing.T) {
	srv, _ := newTestServer(t)

	resp, _, raw := do(t, "GET", srv.URL+"/v1/admin/storage", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET storage = %d (%s)", resp.StatusCode, raw)
	}
	var storage reefhttp.StorageResponse
	if err := json.Unmarshal([]byte(raw), &storage); err != nil {
		t.Fatal(err)
	}
	if storage.Storage.Backend != "file" || storage.Storage.Sync == "" {
		t.Fatalf("storage = %+v, want a file backend with a sync policy", storage.Storage)
	}
	gen := storage.Storage.Generation

	resp, _, raw = do(t, "POST", srv.URL+"/v1/admin/snapshot", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST snapshot = %d (%s)", resp.StatusCode, raw)
	}
	if err := json.Unmarshal([]byte(raw), &storage); err != nil {
		t.Fatal(err)
	}
	if storage.Storage.Generation != gen+1 || storage.Storage.Snapshots == 0 {
		t.Fatalf("post-snapshot storage = %+v, want generation %d", storage.Storage, gen+1)
	}
	if storage.Storage.WALRecords != 0 {
		t.Errorf("WAL not reset by snapshot: %d records", storage.Storage.WALRecords)
	}
}

// bareDeployment implements reef.Deployment but not reef.Persister; the
// admin endpoints must answer 501 for it. Only the admin routes are hit,
// so the embedded nil interface is never called.
type bareDeployment struct{ reef.Deployment }

// TestAdminUnsupported pins the 501 envelope for deployments without a
// persistence surface.
func TestAdminUnsupported(t *testing.T) {
	srv := httptest.NewServer(reefhttp.NewHandler(bareDeployment{}, nil))
	defer srv.Close()
	for _, tc := range []struct{ method, path string }{
		{"GET", "/v1/admin/storage"},
		{"POST", "/v1/admin/snapshot"},
	} {
		resp, envelope, raw := do(t, tc.method, srv.URL+tc.path, "")
		if resp.StatusCode != http.StatusNotImplemented {
			t.Errorf("%s %s = %d, want 501 (%s)", tc.method, tc.path, resp.StatusCode, raw)
		}
		if envelope.Error.Code != reefhttp.CodeUnsupported {
			t.Errorf("%s %s code = %q, want unsupported", tc.method, tc.path, envelope.Error.Code)
		}
	}
}

// TestDeliveryEndpointErrorPaths is the table-driven sweep over the
// reliable-delivery routes' failure envelopes: wrong methods, bad JSON,
// missing parameters, unknown subscriptions, and — the typed config
// error — an ack against a best-effort subscription.
func TestDeliveryEndpointErrorPaths(t *testing.T) {
	srv, dep := newTestServer(t)
	ctx := context.Background()
	const bestEffort = "http://f.test/plain.xml"
	const reliableFeed = "http://f.test/reliable.xml"
	if _, err := dep.Subscribe(ctx, "u", bestEffort); err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Subscribe(ctx, "u", reliableFeed, reef.WithGuarantee(reef.AtLeastOnce)); err != nil {
		t.Fatal(err)
	}
	enc := url.PathEscape(bestEffort)
	encReliable := url.PathEscape(reliableFeed)

	tests := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
		wantAllow  string
	}{
		{"ack wrong method", "GET", "/v1/subscriptions/" + encReliable + "/ack", "", http.StatusMethodNotAllowed, reefhttp.CodeMethodNotAllowed, "POST"},
		{"events wrong method", "POST", "/v1/subscriptions/" + encReliable + "/events", "{}", http.StatusMethodNotAllowed, reefhttp.CodeMethodNotAllowed, "GET"},
		{"deadletter wrong method", "DELETE", "/v1/admin/deadletter", "", http.StatusMethodNotAllowed, reefhttp.CodeMethodNotAllowed, "GET, POST"},

		{"ack bad JSON", "POST", "/v1/subscriptions/" + encReliable + "/ack", "{nope", http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
		{"deadletter drain bad JSON", "POST", "/v1/admin/deadletter", "[", http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
		{"events missing user", "GET", "/v1/subscriptions/" + encReliable + "/events", "", http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
		{"events bad max", "GET", "/v1/subscriptions/" + encReliable + "/events?user=u&max=lots", "", http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
		{"events bad wait", "GET", "/v1/subscriptions/" + encReliable + "/events?user=u&wait=soon", "", http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
		{"events bare-number wait", "GET", "/v1/subscriptions/" + encReliable + "/events?user=u&wait=5", "", http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
		{"events negative wait", "GET", "/v1/subscriptions/" + encReliable + "/events?user=u&wait=-1s", "", http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
		{"events oversized wait", "GET", "/v1/subscriptions/" + encReliable + "/events?user=u&wait=31s", "", http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
		{"deadletter missing user", "GET", "/v1/admin/deadletter", "", http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
		{"deadletter drain missing user", "POST", "/v1/admin/deadletter", "{}", http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
		{"blank subscription segment", "POST", "/v1/subscriptions/%20/ack", `{"user":"u","seq":1}`, http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},

		{"ack unknown subscription", "POST", "/v1/subscriptions/ghost/ack", `{"user":"u","seq":1}`, http.StatusNotFound, reefhttp.CodeNotFound, ""},
		{"events unknown subscription", "GET", "/v1/subscriptions/ghost/events?user=u", "", http.StatusNotFound, reefhttp.CodeNotFound, ""},
		{"deadletter unknown subscription", "GET", "/v1/admin/deadletter?user=u&subscription=ghost", "", http.StatusNotFound, reefhttp.CodeNotFound, ""},

		{"ack on best-effort subscription", "POST", "/v1/subscriptions/" + enc + "/ack", `{"user":"u","seq":1}`, http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
		{"events on best-effort subscription", "GET", "/v1/subscriptions/" + enc + "/events?user=u", "", http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
		{"ack beyond delivered", "POST", "/v1/subscriptions/" + encReliable + "/ack", `{"user":"u","seq":99}`, http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},

		{"subscribe with unknown guarantee", "PUT", "/v1/users/u/subscriptions", `{"feed_url":"http://f.test/x.xml","delivery":{"guarantee":"exactly_once"}}`, http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
		{"subscribe ordering key without tier", "PUT", "/v1/users/u/subscriptions", `{"feed_url":"http://f.test/x.xml","delivery":{"ordering_key":"topic"}}`, http.StatusBadRequest, reefhttp.CodeInvalidArgument, ""},
	}

	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			resp, envelope, raw := do(t, tc.method, srv.URL+tc.path, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, raw)
			}
			if envelope.Error.Code != tc.wantCode {
				t.Errorf("envelope code = %q, want %q (body %s)", envelope.Error.Code, tc.wantCode, raw)
			}
			if envelope.Error.Message == "" {
				t.Error("envelope has no message")
			}
			if tc.wantAllow != "" {
				if allow := resp.Header.Get("Allow"); allow != tc.wantAllow {
					t.Errorf("Allow = %q, want %q", allow, tc.wantAllow)
				}
			}
		})
	}

	// The best-effort rejection carries the rich config-error text, so an
	// operator reading the envelope knows the fix.
	_, envelope, _ := do(t, "POST", srv.URL+"/v1/subscriptions/"+enc+"/ack", `{"user":"u","seq":1}`)
	if !strings.Contains(envelope.Error.Message, "best-effort") || !strings.Contains(envelope.Error.Message, "AtLeastOnce") {
		t.Errorf("best-effort ack message = %q, want tier explanation with the WithGuarantee fix", envelope.Error.Message)
	}
}

// TestFetchEventsLongPoll pins the bounded long-poll on the fetch
// endpoint: an expired wait returns an empty 200 (not an error), and a
// publish mid-wait wakes the parked request through the queue's notify
// hook well before the bound.
func TestFetchEventsLongPoll(t *testing.T) {
	srv, dep := newTestServer(t)
	ctx := context.Background()
	const feed = "http://f.test/poll.xml"
	if _, err := dep.Subscribe(ctx, "u", feed, reef.WithGuarantee(reef.AtLeastOnce)); err != nil {
		t.Fatal(err)
	}
	enc := url.PathEscape(feed)

	// Empty queue: the request parks for the full wait, then answers
	// with zero events.
	start := time.Now()
	resp, _, raw := do(t, "GET", srv.URL+"/v1/subscriptions/"+enc+"/events?user=u&wait=150ms", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty long-poll status = %d, want 200 (body %s)", resp.StatusCode, raw)
	}
	var out reefhttp.DeliveredResponse
	if err := json.Unmarshal([]byte(raw), &out); err != nil {
		t.Fatalf("decode %q: %v", raw, err)
	}
	if len(out.Events) != 0 {
		t.Fatalf("empty long-poll returned %d events", len(out.Events))
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("empty long-poll answered after %v, want it parked near the 150ms bound", elapsed)
	}

	// Publish mid-wait: the notify hook must wake the poll long before
	// the 10s bound.
	go func() {
		time.Sleep(100 * time.Millisecond)
		_, _ = dep.PublishEvent(ctx, reef.Event{Attrs: map[string]string{
			"type": "feed-item", "feed": feed, "title": "t", "link": "http://x.test/i",
		}})
	}()
	start = time.Now()
	resp, _, raw = do(t, "GET", srv.URL+"/v1/subscriptions/"+enc+"/events?user=u&wait=10s", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("long-poll status = %d, want 200 (body %s)", resp.StatusCode, raw)
	}
	out = reefhttp.DeliveredResponse{}
	if err := json.Unmarshal([]byte(raw), &out); err != nil {
		t.Fatalf("decode %q: %v", raw, err)
	}
	if len(out.Events) == 0 {
		t.Fatal("long-poll returned no events after a mid-wait publish")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("long-poll took %v, want a prompt wake on the publish", elapsed)
	}
}

// TestDeliveryUnsupported pins the 501 envelope for deployments without
// a reliable-delivery surface.
func TestDeliveryUnsupported(t *testing.T) {
	srv := httptest.NewServer(reefhttp.NewHandler(bareDeployment{}, nil))
	defer srv.Close()
	for _, tc := range []struct{ method, path, body string }{
		{"GET", "/v1/subscriptions/s/events?user=u", ""},
		{"POST", "/v1/subscriptions/s/ack", `{"user":"u","seq":1}`},
		{"GET", "/v1/admin/deadletter?user=u", ""},
		{"POST", "/v1/admin/deadletter", `{"user":"u"}`},
	} {
		resp, envelope, raw := do(t, tc.method, srv.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusNotImplemented {
			t.Errorf("%s %s = %d, want 501 (%s)", tc.method, tc.path, resp.StatusCode, raw)
		}
		if envelope.Error.Code != reefhttp.CodeUnsupported {
			t.Errorf("%s %s code = %q, want unsupported", tc.method, tc.path, envelope.Error.Code)
		}
	}
}

// TestReadyz pins the readiness endpoint, table-driven over the gate's
// lifecycle: starting (503) -> ready (200) -> draining (503), the
// no-gate fallback (mirrors liveness), node identity stamping, and the
// wrong-method envelope. Unlike every other route, readyz keeps the
// ReadyResponse body shape at 503 so probers can read the status.
func TestReadyz(t *testing.T) {
	model := topics.NewModel(41, 4, 10, 12)
	wcfg := websim.DefaultConfig(41, time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC))
	wcfg.NumContentServers = 4
	web := websim.Generate(wcfg, model)
	open := func(t *testing.T) *reef.Centralized {
		t.Helper()
		dep, err := reef.NewCentralized(reef.WithFetcher(web))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = dep.Close() })
		return dep
	}

	for _, tc := range []struct {
		name       string
		opts       func(r *reefhttp.Readiness) []reefhttp.HandlerOption
		arm        func(r *reefhttp.Readiness)
		closeDep   bool
		method     string
		wantStatus int
		wantBody   string // ReadyResponse.Status; "" = expect error envelope
		wantNode   string
	}{
		{
			name: "gate starting",
			opts: func(r *reefhttp.Readiness) []reefhttp.HandlerOption {
				return []reefhttp.HandlerOption{reefhttp.WithReadiness(r)}
			},
			arm:        func(r *reefhttp.Readiness) {},
			method:     "GET",
			wantStatus: http.StatusServiceUnavailable,
			wantBody:   reefhttp.ReadyStarting,
		},
		{
			name: "gate ready",
			opts: func(r *reefhttp.Readiness) []reefhttp.HandlerOption {
				return []reefhttp.HandlerOption{reefhttp.WithReadiness(r)}
			},
			arm:        func(r *reefhttp.Readiness) { r.SetReady() },
			method:     "GET",
			wantStatus: http.StatusOK,
			wantBody:   reefhttp.ReadyOK,
		},
		{
			name: "gate draining",
			opts: func(r *reefhttp.Readiness) []reefhttp.HandlerOption {
				return []reefhttp.HandlerOption{reefhttp.WithReadiness(r)}
			},
			arm:        func(r *reefhttp.Readiness) { r.SetReady(); r.SetDraining() },
			method:     "GET",
			wantStatus: http.StatusServiceUnavailable,
			wantBody:   reefhttp.ReadyDraining,
		},
		{
			name: "gate ready with node id",
			opts: func(r *reefhttp.Readiness) []reefhttp.HandlerOption {
				return []reefhttp.HandlerOption{reefhttp.WithReadiness(r), reefhttp.WithNodeID("n1")}
			},
			arm:        func(r *reefhttp.Readiness) { r.SetReady() },
			method:     "GET",
			wantStatus: http.StatusOK,
			wantBody:   reefhttp.ReadyOK,
			wantNode:   "n1",
		},
		{
			name:       "no gate mirrors liveness",
			opts:       func(r *reefhttp.Readiness) []reefhttp.HandlerOption { return nil },
			arm:        func(r *reefhttp.Readiness) {},
			method:     "GET",
			wantStatus: http.StatusOK,
			wantBody:   reefhttp.ReadyOK,
		},
		{
			name:       "no gate closed deployment",
			opts:       func(r *reefhttp.Readiness) []reefhttp.HandlerOption { return nil },
			arm:        func(r *reefhttp.Readiness) {},
			closeDep:   true,
			method:     "GET",
			wantStatus: http.StatusServiceUnavailable,
			wantBody:   reefhttp.ReadyDraining,
		},
		{
			name:       "wrong method",
			opts:       func(r *reefhttp.Readiness) []reefhttp.HandlerOption { return nil },
			arm:        func(r *reefhttp.Readiness) {},
			method:     "POST",
			wantStatus: http.StatusMethodNotAllowed,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dep := open(t)
			if tc.closeDep {
				_ = dep.Close()
			}
			r := reefhttp.NewReadiness()
			tc.arm(r)
			srv := httptest.NewServer(reefhttp.NewHandler(dep, nil, tc.opts(r)...))
			t.Cleanup(srv.Close)
			resp, envelope, raw := do(t, tc.method, srv.URL+"/v1/readyz", "")
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("readyz = %d, want %d (%s)", resp.StatusCode, tc.wantStatus, raw)
			}
			if tc.wantBody == "" {
				if envelope.Error.Code != reefhttp.CodeMethodNotAllowed {
					t.Errorf("error code = %q, want method_not_allowed", envelope.Error.Code)
				}
				return
			}
			var body reefhttp.ReadyResponse
			if err := json.Unmarshal([]byte(raw), &body); err != nil {
				t.Fatalf("decoding readyz body %q: %v", raw, err)
			}
			if body.Status != tc.wantBody {
				t.Errorf("readyz status = %q, want %q", body.Status, tc.wantBody)
			}
			if body.Node != tc.wantNode {
				t.Errorf("readyz node = %q, want %q", body.Node, tc.wantNode)
			}
		})
	}
}

// TestHealthz pins the liveness endpoint across deployment shapes:
// sharded file-backed, memory-backed, wrong method, and closed.
func TestHealthz(t *testing.T) {
	model := topics.NewModel(31, 4, 10, 12)
	wcfg := websim.DefaultConfig(31, time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC))
	wcfg.NumContentServers = 6
	wcfg.NumAdServers = 2
	web := websim.Generate(wcfg, model)
	open := func(t *testing.T, opts ...reef.Option) *reef.Centralized {
		t.Helper()
		dep, err := reef.NewCentralized(append([]reef.Option{reef.WithFetcher(web)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return dep
	}
	for _, tc := range []struct {
		name        string
		dep         func(t *testing.T) *reef.Centralized
		method      string
		wantStatus  int
		wantShards  int
		wantBackend string
		wantCode    string
	}{
		{
			name: "sharded file-backed",
			dep: func(t *testing.T) *reef.Centralized {
				return open(t, reef.WithShards(3), reef.WithDataDir(t.TempDir()))
			},
			method:      "GET",
			wantStatus:  http.StatusOK,
			wantShards:  3,
			wantBackend: "file",
		},
		{
			name:        "memory single shard",
			dep:         func(t *testing.T) *reef.Centralized { return open(t) },
			method:      "GET",
			wantStatus:  http.StatusOK,
			wantShards:  1,
			wantBackend: "memory",
		},
		{
			name:       "wrong method",
			dep:        func(t *testing.T) *reef.Centralized { return open(t) },
			method:     "POST",
			wantStatus: http.StatusMethodNotAllowed,
			wantCode:   reefhttp.CodeMethodNotAllowed,
		},
		{
			name: "closed deployment",
			dep: func(t *testing.T) *reef.Centralized {
				dep := open(t)
				_ = dep.Close()
				return dep
			},
			method:     "GET",
			wantStatus: http.StatusServiceUnavailable,
			wantCode:   reefhttp.CodeUnavailable,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dep := tc.dep(t)
			t.Cleanup(func() { _ = dep.Close() })
			srv := httptest.NewServer(reefhttp.NewHandler(dep, nil))
			t.Cleanup(srv.Close)
			resp, envelope, raw := do(t, tc.method, srv.URL+"/v1/healthz", "")
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("healthz = %d, want %d (%s)", resp.StatusCode, tc.wantStatus, raw)
			}
			if tc.wantCode != "" {
				if envelope.Error.Code != tc.wantCode {
					t.Errorf("error code = %q, want %q", envelope.Error.Code, tc.wantCode)
				}
				return
			}
			var h reefhttp.HealthResponse
			if err := json.Unmarshal([]byte(raw), &h); err != nil {
				t.Fatalf("decoding healthz body %q: %v", raw, err)
			}
			if h.Status != "ok" || h.Shards != tc.wantShards || h.Backend != tc.wantBackend {
				t.Errorf("healthz = %+v, want status ok, %d shards, backend %q", h, tc.wantShards, tc.wantBackend)
			}
		})
	}

	// WithStreamAddr advertises the binary ingest listener in healthz.
	t.Run("stream addr advertised", func(t *testing.T) {
		dep := open(t)
		t.Cleanup(func() { _ = dep.Close() })
		srv := httptest.NewServer(reefhttp.NewHandler(dep, nil, reefhttp.WithStreamAddr("127.0.0.1:7071")))
		t.Cleanup(srv.Close)
		_, _, raw := do(t, "GET", srv.URL+"/v1/healthz", "")
		var h reefhttp.HealthResponse
		if err := json.Unmarshal([]byte(raw), &h); err != nil {
			t.Fatalf("decoding healthz body %q: %v", raw, err)
		}
		if h.StreamAddr != "127.0.0.1:7071" {
			t.Errorf("stream_addr = %q, want advertised listener", h.StreamAddr)
		}
	})
}
