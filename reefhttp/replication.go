package reefhttp

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"reef"
	"reef/internal/replication"
)

// Replicator is the replication surface a server can mount: the two
// ingest routes peers stream into, plus the status the admin endpoint
// and /v1/stats expose. Implemented by *replication.Manager.
type Replicator interface {
	// IngestRecords applies one WAL batch from a peer. A
	// *replication.ConflictError return is answered 409 with this
	// node's authoritative Ack.
	IngestRecords(source string, epoch, prev, last int64, count int, frames []byte) (replication.Ack, error)
	// IngestSnapshot absorbs a full state cut from a peer.
	IngestSnapshot(source string, epoch, seq int64, state []byte) (replication.Ack, error)
	// Status reports stream positions and health.
	Status() replication.Status
	// Stats flattens the status into gauges merged into /v1/stats.
	Stats() map[string]float64
}

// WithReplication mounts the replication ingest routes and the admin
// status endpoint over the given manager:
//
//	POST /v1/replication/records    ingest a WAL batch (octet-stream)
//	POST /v1/replication/snapshot   ingest a snapshot cut (JSON state)
//	GET  /v1/admin/replication      stream positions, lag, health
//
// The ingest routes speak the replication wire protocol — handshake in
// X-Reef-Replication-* headers, bare Ack JSON answers (409 on a
// watermark conflict) — not the error envelope, because the peer's
// sender is the only client. Without this option the three routes
// answer 501.
func WithReplication(r Replicator) HandlerOption {
	return func(h *Handler) { h.repl = r }
}

// ReplicationStatusResponse is the GET /v1/admin/replication body.
type ReplicationStatusResponse struct {
	Replication replication.Status `json:"replication"`
}

// replicator unwraps the mounted replication surface, answering the
// 501 envelope when there is none.
func (h *Handler) replicator(rw http.ResponseWriter) (Replicator, bool) {
	if h.repl == nil {
		h.writeDeploymentError(rw, fmt.Errorf("%w: server has no replication surface", reef.ErrUnsupported))
		return nil, false
	}
	return h.repl, true
}

// replHeader reads one int64 replication header, failing closed: a
// missing or malformed handshake header rejects the batch rather than
// silently defaulting to position 0 (which could double-apply).
func replHeader(req *http.Request, name string) (int64, error) {
	v := req.Header.Get(name)
	if v == "" {
		return 0, fmt.Errorf("missing %s header", name)
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s header: %v", name, err)
	}
	return n, nil
}

// handleReplicationRecords ingests one streamed WAL batch from a peer.
func (h *Handler) handleReplicationRecords(rw http.ResponseWriter, req *http.Request) {
	r, ok := h.replicator(rw)
	if !ok {
		return
	}
	source := req.Header.Get(replication.HdrSource)
	if source == "" {
		h.writeError(rw, http.StatusBadRequest, CodeInvalidArgument, "missing "+replication.HdrSource+" header")
		return
	}
	var hv [4]int64
	for i, name := range []string{replication.HdrEpoch, replication.HdrPrev, replication.HdrLast, replication.HdrCount} {
		v, err := replHeader(req, name)
		if err != nil {
			h.writeError(rw, http.StatusBadRequest, CodeInvalidArgument, err.Error())
			return
		}
		hv[i] = v
	}
	frames, err := io.ReadAll(io.LimitReader(req.Body, maxBodyBytes))
	if err != nil {
		h.writeError(rw, http.StatusBadRequest, CodeInvalidArgument, "reading body: "+err.Error())
		return
	}
	ack, err := r.IngestRecords(source, hv[0], hv[1], hv[2], int(hv[3]), frames)
	h.writeAck(rw, ack, err)
}

// handleReplicationSnapshot ingests a full state cut from a peer.
func (h *Handler) handleReplicationSnapshot(rw http.ResponseWriter, req *http.Request) {
	r, ok := h.replicator(rw)
	if !ok {
		return
	}
	source := req.Header.Get(replication.HdrSource)
	if source == "" {
		h.writeError(rw, http.StatusBadRequest, CodeInvalidArgument, "missing "+replication.HdrSource+" header")
		return
	}
	epoch, err := replHeader(req, replication.HdrEpoch)
	if err != nil {
		h.writeError(rw, http.StatusBadRequest, CodeInvalidArgument, err.Error())
		return
	}
	seq, err := replHeader(req, replication.HdrSeq)
	if err != nil {
		h.writeError(rw, http.StatusBadRequest, CodeInvalidArgument, err.Error())
		return
	}
	state, err := io.ReadAll(io.LimitReader(req.Body, maxBodyBytes))
	if err != nil {
		h.writeError(rw, http.StatusBadRequest, CodeInvalidArgument, "reading body: "+err.Error())
		return
	}
	ack, err := r.IngestSnapshot(source, epoch, seq, state)
	h.writeAck(rw, ack, err)
}

// writeAck answers an ingest call in the wire protocol's envelope: 200
// with the Ack, 409 with the authoritative Ack on a watermark conflict,
// or the plain error envelope otherwise.
func (h *Handler) writeAck(rw http.ResponseWriter, ack replication.Ack, err error) {
	var conflict *replication.ConflictError
	if errors.As(err, &conflict) {
		h.writeJSON(rw, http.StatusConflict, conflict.Ack)
		return
	}
	if err != nil {
		h.writeDeploymentError(rw, err)
		return
	}
	h.writeJSON(rw, http.StatusOK, ack)
}

// handleReplicationStatus serves the admin view of both stream roles.
func (h *Handler) handleReplicationStatus(rw http.ResponseWriter, req *http.Request) {
	r, ok := h.replicator(rw)
	if !ok {
		return
	}
	h.writeJSON(rw, http.StatusOK, ReplicationStatusResponse{Replication: r.Status()})
}
