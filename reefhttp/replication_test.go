package reefhttp_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"reef/internal/durable"
	"reef/internal/replication"
	"reef/reefhttp"
)

// replTestApplier is the minimal Applier the route tests need.
type replTestApplier struct {
	mu   sync.Mutex
	recs int
	cuts int
}

func (a *replTestApplier) ApplyReplicated(recs []durable.Record) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.recs += len(recs)
	return nil
}

func (a *replTestApplier) ApplyReplicatedCut(*durable.State) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cuts++
	return nil
}

func (a *replTestApplier) CaptureReplicationState() (*durable.State, error) {
	return &durable.State{Version: 1}, nil
}

// newReplServer mounts the full handler with a replication manager over
// a real (small) deployment.
func newReplServer(t *testing.T) *httptest.Server {
	t.Helper()
	mgr, err := replication.New(replication.Options{
		Self: "b",
		Nodes: []replication.Node{
			{ID: "a", BaseURL: "http://unused.test"},
			{ID: "b", BaseURL: "http://unused.test"},
		},
		Applier: &replTestApplier{},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	srv, _ := newTestServer(t, reefhttp.WithReplication(mgr))
	return srv
}

// replPost issues an ingest POST with the wire headers.
func replPost(t *testing.T, url string, hdr map[string]string, body []byte) (*http.Response, replication.Ack) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack replication.Ack
	_ = json.NewDecoder(resp.Body).Decode(&ack)
	return resp, ack
}

func recordsHdr(epoch, prev, last int64, count int) map[string]string {
	return map[string]string{
		replication.HdrSource: "a",
		replication.HdrEpoch:  strconv.FormatInt(epoch, 10),
		replication.HdrPrev:   strconv.FormatInt(prev, 10),
		replication.HdrLast:   strconv.FormatInt(last, 10),
		replication.HdrCount:  strconv.Itoa(count),
	}
}

// TestReplicationRoutes pins the wire surface end to end: ingest with
// acks, watermark conflict as 409 + Ack, snapshot ingest, the admin
// status endpoint, and the merged stats gauges.
func TestReplicationRoutes(t *testing.T) {
	srv := newReplServer(t)

	// A valid batch answers 200 with the new watermark.
	frames := durable.CursorAckRecord(durable.CursorAckPayload{User: "u", ID: "s", Seq: 1}).AppendEncoded(nil)
	resp, ack := replPost(t, srv.URL+"/v1/replication/records", recordsHdr(1, 0, 1, 1), frames)
	if resp.StatusCode != http.StatusOK || ack.Acked != 1 {
		t.Fatalf("ingest = %d ack %d, want 200 ack 1", resp.StatusCode, ack.Acked)
	}

	// A mismatched prev answers 409 with the authoritative position.
	resp, ack = replPost(t, srv.URL+"/v1/replication/records", recordsHdr(1, 7, 8, 1), frames)
	if resp.StatusCode != http.StatusConflict || ack.Acked != 1 {
		t.Fatalf("conflict = %d ack %d, want 409 ack 1", resp.StatusCode, ack.Acked)
	}

	// A snapshot cut advances the position to its seq.
	cut, _ := json.Marshal(durable.State{Version: 1})
	resp, ack = replPost(t, srv.URL+"/v1/replication/snapshot", map[string]string{
		replication.HdrSource: "a",
		replication.HdrEpoch:  "1",
		replication.HdrSeq:    "9",
	}, cut)
	if resp.StatusCode != http.StatusOK || ack.Acked != 9 {
		t.Fatalf("snapshot = %d ack %d, want 200 ack 9", resp.StatusCode, ack.Acked)
	}

	// The admin endpoint reports the inbound stream position.
	resp2, _, body := do(t, "GET", srv.URL+"/v1/admin/replication", "")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("admin status = %d: %s", resp2.StatusCode, body)
	}
	var st reefhttp.ReplicationStatusResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Replication.Sources) != 1 || st.Replication.Sources[0].Applied != 9 {
		t.Fatalf("admin status sources = %+v, want one at 9", st.Replication.Sources)
	}

	// Replication gauges ride along on /v1/stats.
	resp2, _, body = do(t, "GET", srv.URL+"/v1/stats", "")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("stats = %d: %s", resp2.StatusCode, body)
	}
	var stats reefhttp.StatsResponse
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Stats["replication_applied_records"] != 9 {
		t.Fatalf("stats gauge replication_applied_records = %v, want 9", stats.Stats["replication_applied_records"])
	}
}

// TestReplicationRouteErrors pins the failure envelopes: missing
// headers, bad header values, wrong methods, and the 501 answer when no
// manager is mounted.
func TestReplicationRouteErrors(t *testing.T) {
	srv := newReplServer(t)

	// Missing source header.
	resp, _ := replPost(t, srv.URL+"/v1/replication/records", nil, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing headers = %d, want 400", resp.StatusCode)
	}
	// Malformed watermark header.
	hdr := recordsHdr(1, 0, 1, 1)
	hdr[replication.HdrPrev] = "not-a-number"
	resp, _ = replPost(t, srv.URL+"/v1/replication/records", hdr, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad header = %d, want 400", resp.StatusCode)
	}
	// Wrong method.
	resp2, envelope, _ := do(t, "GET", srv.URL+"/v1/replication/records", "")
	if resp2.StatusCode != http.StatusMethodNotAllowed || envelope.Error.Code != reefhttp.CodeMethodNotAllowed {
		t.Fatalf("GET records = %d code %q, want 405 method_not_allowed", resp2.StatusCode, envelope.Error.Code)
	}

	// Without WithReplication every replication route answers 501.
	plain, _ := newTestServer(t)
	for _, probe := range []struct{ method, path string }{
		{"POST", "/v1/replication/records"},
		{"POST", "/v1/replication/snapshot"},
		{"GET", "/v1/admin/replication"},
	} {
		resp, envelope, _ := do(t, probe.method, plain.URL+probe.path, "")
		if resp.StatusCode != http.StatusNotImplemented || envelope.Error.Code != reefhttp.CodeUnsupported {
			t.Fatalf("%s %s without manager = %d code %q, want 501 unsupported",
				probe.method, probe.path, resp.StatusCode, envelope.Error.Code)
		}
	}
}

// guard against the route list drifting: the doc comment advertises the
// replication paths the constants define.
func TestReplicationPathConstants(t *testing.T) {
	if !strings.HasPrefix(replication.RecordsPath, "/v1/replication/") ||
		!strings.HasPrefix(replication.SnapshotPath, "/v1/replication/") {
		t.Fatalf("replication paths moved: %s %s", replication.RecordsPath, replication.SnapshotPath)
	}
}
