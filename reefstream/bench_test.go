package reefstream_test

import (
	"context"
	"testing"

	"reef"
	"reef/reefstream"
)

// BenchmarkStreamPublishEvent drives single-event publishes through the
// full client/server path with b.N spread over parallel producers — the
// ingest hot path the transport exists for.
func BenchmarkStreamPublishEvent(b *testing.B) {
	const feed = "http://h.test/f"
	dep := newBenchDep(b, feed)
	srv, err := reefstream.Listen("127.0.0.1:0", dep, reefstream.WithNode("n1"))
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cl := reefstream.NewClient(srv.Addr().String())
	defer cl.Close()
	ctx := context.Background()
	ev := feedEvent(feed)
	b.SetParallelism(32)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := cl.PublishEvent(ctx, ev); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func newBenchDep(b *testing.B, feed string) *reef.Centralized {
	b.Helper()
	dep, err := reef.NewCentralized(reef.WithFetcher(nopFetcher{}), reef.WithQueueSize(1))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { dep.Close() })
	if _, err := dep.Subscribe(context.Background(), "user-000", feed); err != nil {
		b.Fatal(err)
	}
	return dep
}
