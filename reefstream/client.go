package reefstream

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"reef"
	"reef/internal/durable"
	"reef/internal/metrics"
	"reef/internal/trace"
)

// Client publishes events over one long-lived stream connection. It is
// safe for concurrent use: callers pipeline publish frames onto the
// shared connection without waiting for each other's acks, a writer
// goroutine batches their frames into single flushes, and a reader
// goroutine matches acks back to callers by sequence number. A dead
// connection is redialed lazily (single-flight) on the next publish.
type Client struct {
	addr        string
	expectNode  string
	dialTimeout time.Duration
	callTimeout time.Duration

	metrics *metrics.Registry
	mAckRTT *metrics.Histogram

	mu      sync.Mutex
	cond    *sync.Cond
	conn    *streamConn
	dialing bool
	closed  bool
}

// ClientOption configures a stream client.
type ClientOption func(*Client)

// WithExpectNode makes the client verify the node identity the server
// reports in its handshake, refusing the connection on mismatch — the
// stream-plane analogue of the cluster prober's /healthz identity check.
func WithExpectNode(id string) ClientOption {
	return func(c *Client) { c.expectNode = id }
}

// WithDialTimeout bounds connection establishment (default 5s).
func WithDialTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.dialTimeout = d }
}

// WithCallTimeout bounds one publish round trip when the caller's
// context has no deadline of its own (default 10s).
func WithCallTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.callTimeout = d }
}

// WithClientMetrics reports the client's ack round-trip latency
// histogram into a shared registry (the cluster router passes its own,
// so one scrape covers every node's publish leg). Without it the
// client keeps a private registry, readable via Metrics.
func WithClientMetrics(r *metrics.Registry) ClientOption {
	return func(c *Client) { c.metrics = r }
}

// NewClient creates a stream client for addr. No connection is made
// until the first publish.
func NewClient(addr string, opts ...ClientOption) *Client {
	c := &Client{
		addr:        addr,
		dialTimeout: 5 * time.Second,
		callTimeout: 10 * time.Second,
	}
	c.cond = sync.NewCond(&c.mu)
	for _, opt := range opts {
		opt(c)
	}
	if c.metrics == nil {
		c.metrics = metrics.NewRegistry()
	}
	c.mAckRTT = c.metrics.Histogram(metrics.StreamAckSeconds.Name)
	return c
}

// Metrics returns the client's instrumentation registry.
func (c *Client) Metrics() *metrics.Registry { return c.metrics }

// Addr reports the address the client dials.
func (c *Client) Addr() string { return c.addr }

// payloadPool recycles publish payload encode buffers. Safe because
// roundTrip copies the payload into its own frame buffer before
// queueing it, so the payload is unreferenced once PublishPayload
// returns.
var payloadPool = sync.Pool{New: func() any { return new([]byte) }}

// PublishEvent publishes one event and returns its delivered count.
func (c *Client) PublishEvent(ctx context.Context, ev reef.Event) (int, error) {
	pp := payloadPool.Get().(*[]byte)
	buf := binary.AppendUvarint((*pp)[:0], 1)
	buf = AppendEvent(buf, ev)
	delivered, err := c.PublishPayload(ctx, buf)
	*pp = buf
	payloadPool.Put(pp)
	return delivered, err
}

// PublishBatch publishes a batch, splitting it into frames of at most
// MaxFrameEvents. It returns the total delivered count; on error the
// count covers the frames that were acked before the failure.
func (c *Client) PublishBatch(ctx context.Context, evs []reef.Event) (int, error) {
	pp := payloadPool.Get().(*[]byte)
	defer payloadPool.Put(pp)
	total := 0
	for len(evs) > 0 {
		n := len(evs)
		if n > MaxFrameEvents {
			n = MaxFrameEvents
		}
		buf := AppendEvents((*pp)[:0], evs[:n])
		delivered, err := c.PublishPayload(ctx, buf)
		*pp = buf
		total += delivered
		if err != nil {
			return total, err
		}
		evs = evs[n:]
	}
	return total, nil
}

// errCallTimeout reports a stream that stopped acking for a full call
// timeout; it unwraps to context.DeadlineExceeded like the per-call
// deadline it replaces. The connection's watchdog raises it (see
// streamConn.watchdog) so the ingest hot path pays no per-call timer.
var errCallTimeout = fmt.Errorf("reefstream: publish round trip timed out: %w", context.DeadlineExceeded)

// PublishPayload ships an EncodeEvents payload as one publish frame and
// waits for its ack. The cluster router encodes a batch once and calls
// this per node, so fan-out does not re-encode per destination. A
// connection-level failure is retried once on a fresh connection;
// server-side rejections (StatusError) and timeouts are not retried.
func (c *Client) PublishPayload(ctx context.Context, payload []byte) (int, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		sc, err := c.getConn(ctx)
		if err != nil {
			return 0, err
		}
		begin := time.Now()
		delivered, err := sc.roundTrip(ctx, payload)
		if err == nil {
			c.mAckRTT.Observe(time.Since(begin).Seconds())
			return delivered, nil
		}
		var se *StatusError
		if errors.As(err, &se) || ctx.Err() != nil || errors.Is(err, context.DeadlineExceeded) {
			return delivered, err
		}
		// Connection-level failure: drop the conn so the next attempt
		// (ours or a concurrent caller's) redials.
		c.dropConn(sc)
		lastErr = err
	}
	return 0, fmt.Errorf("reefstream: publish to %s: %w", c.addr, lastErr)
}

// Close closes the client and its connection. Further publishes return
// reef.ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	sc := c.conn
	c.conn = nil
	c.cond.Broadcast()
	c.mu.Unlock()
	if sc != nil {
		sc.markDead(reef.ErrClosed)
	}
	return nil
}

// getConn returns the live connection, dialing one (single-flight) if
// needed. Concurrent callers wait for the dialer rather than piling on.
func (c *Client) getConn(ctx context.Context) (*streamConn, error) {
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return nil, reef.ErrClosed
		}
		if err := ctx.Err(); err != nil {
			c.mu.Unlock()
			return nil, err
		}
		if c.conn != nil && !c.conn.isDead() {
			sc := c.conn
			c.mu.Unlock()
			return sc, nil
		}
		if !c.dialing {
			c.dialing = true
			c.mu.Unlock()
			sc, err := c.dial()
			c.mu.Lock()
			c.dialing = false
			if err == nil {
				c.conn = sc
			}
			c.cond.Broadcast()
			if err != nil {
				c.mu.Unlock()
				return nil, err
			}
			continue
		}
		c.cond.Wait()
	}
}

// dropConn forgets sc if it is still the current connection, so the
// next getConn redials. The conn itself is torn down by markDead.
func (c *Client) dropConn(sc *streamConn) {
	sc.markDead(errors.New("reefstream: connection dropped"))
	c.mu.Lock()
	if c.conn == sc {
		c.conn = nil
	}
	c.mu.Unlock()
}

func (c *Client) dial() (*streamConn, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("reefstream: dial %s: %w", c.addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	sc, err := newStreamConn(conn, c.expectNode, c.dialTimeout, c.callTimeout)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return sc, nil
}

// streamConn is one handshaken connection: a writer goroutine drains
// queued frames and flushes them in batches, a reader goroutine
// dispatches acks to per-sequence waiters. Death is sticky.
type streamConn struct {
	conn    net.Conn
	writeCh chan *[]byte

	wmu     sync.Mutex
	nextSeq uint64
	waiters map[uint64]chan ack

	// Consumer sessions (the read side of the data plane). attachMu
	// single-flights session creation per (user, subID); cmu guards the
	// maps shared with the read loop's deliver dispatch. Sessions die
	// with the connection and re-attach lazily after a redial — the
	// delivery queue's leases make the re-sent window safe.
	attachMu  sync.Mutex
	cmu       sync.Mutex
	nextCID   uint64
	consumers map[string]*clientConsumer // keyed user + "\x00" + subID
	byCID     map[uint64]*clientConsumer

	acks atomic.Uint64 // total acks received; the watchdog's progress signal

	dead    chan struct{}
	deadErr error
	once    sync.Once
}

func newStreamConn(conn net.Conn, expectNode string, hsTimeout, callTimeout time.Duration) (*streamConn, error) {
	conn.SetDeadline(time.Now().Add(hsTimeout))
	bw := bufio.NewWriterSize(conn, 64<<10)
	helloBytes, err := json.Marshal(hello{Proto: ProtoVersion})
	if err != nil {
		return nil, err
	}
	frame := durable.Record{Op: durable.OpStreamHello, Payload: helloBytes}.AppendEncoded(nil)
	if _, err := bw.Write(frame); err != nil {
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(conn, 256<<10)
	var buf []byte
	rec, err := readFrame(br, &buf)
	if err != nil {
		return nil, fmt.Errorf("reefstream: handshake: %w", err)
	}
	if rec.Op != durable.OpStreamHello {
		return nil, fmt.Errorf("%w: expected hello, got %v", ErrBadFrame, rec.Op)
	}
	var h hello
	if err := json.Unmarshal(rec.Payload, &h); err != nil {
		return nil, fmt.Errorf("%w: hello: %v", ErrBadFrame, err)
	}
	if h.Proto != ProtoVersion {
		return nil, fmt.Errorf("reefstream: server speaks protocol %d, want %d", h.Proto, ProtoVersion)
	}
	if expectNode != "" && h.Node != expectNode {
		return nil, fmt.Errorf("reefstream: node identity mismatch: dialed %q, got %q", expectNode, h.Node)
	}
	conn.SetDeadline(time.Time{})

	sc := &streamConn{
		conn:      conn,
		writeCh:   make(chan *[]byte, 256),
		waiters:   make(map[uint64]chan ack),
		consumers: make(map[string]*clientConsumer),
		byCID:     make(map[uint64]*clientConsumer),
		dead:      make(chan struct{}),
	}
	go sc.writeLoop(bw)
	go sc.readLoop(br)
	go sc.watchdog(callTimeout / 2)
	return sc, nil
}

// watchdog enforces the call timeout per connection instead of per
// call: the stream is FIFO, so if any ack is outstanding across a full
// interval in which zero acks arrived, the connection is stuck — kill
// it, failing every waiter with the timeout error. This keeps a timer
// and an extra select case off the publish hot path.
func (sc *streamConn) watchdog(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	var lastAcks uint64
	stalled := false // a waiter was already pending at the previous tick
	for {
		select {
		case <-sc.dead:
			return
		case <-t.C:
			acks := sc.acks.Load()
			sc.wmu.Lock()
			pending := len(sc.waiters)
			sc.wmu.Unlock()
			if pending > 0 && stalled && acks == lastAcks {
				sc.markDead(errCallTimeout)
				return
			}
			stalled = pending > 0
			lastAcks = acks
		}
	}
}

func (sc *streamConn) isDead() bool {
	select {
	case <-sc.dead:
		return true
	default:
		return false
	}
}

// markDead tears the connection down exactly once: the error becomes
// sticky, the socket closes (kicking both loops), and every waiter is
// failed so no caller hangs on an ack that will never come. Waiters are
// failed with a connDead ack rather than a close so their channels stay
// poolable.
func (sc *streamConn) markDead(err error) {
	sc.once.Do(func() {
		sc.deadErr = err
		close(sc.dead)
		sc.conn.Close()
		sc.wmu.Lock()
		waiters := sc.waiters
		sc.waiters = nil
		sc.wmu.Unlock()
		for _, ch := range waiters {
			// Guaranteed room: a channel still registered has no
			// pending send (readLoop deletes before sending).
			ch <- ack{connDead: true}
		}
	})
}

// framePool recycles publish frame buffers: roundTrip fills one, the
// write loop hands it back once the bytes are on the wire.
var framePool = sync.Pool{New: func() any { return new([]byte) }}

// waiterPool recycles ack waiter channels. A channel is pooled only
// after its owner received from it (buffer empty again); abandoned
// waiters — context cancellation racing a late ack — are left to the
// garbage collector.
var waiterPool = sync.Pool{New: func() any { return make(chan ack, 1) }}

// writeLoop drains queued frames, opportunistically batching every
// frame already queued into one flush — concurrent publishers share
// flushes instead of paying one syscall each.
func (sc *streamConn) writeLoop(bw *bufio.Writer) {
	for {
		select {
		case <-sc.dead:
			return
		case frame := <-sc.writeCh:
			if !sc.writeFrame(bw, frame) {
				return
			}
		batch:
			for {
				select {
				case frame := <-sc.writeCh:
					if !sc.writeFrame(bw, frame) {
						return
					}
				default:
					break batch
				}
			}
			if err := bw.Flush(); err != nil {
				sc.markDead(err)
				return
			}
		}
	}
}

func (sc *streamConn) writeFrame(bw *bufio.Writer, frame *[]byte) bool {
	_, err := bw.Write(*frame)
	framePool.Put(frame)
	if err != nil {
		sc.markDead(err)
		return false
	}
	return true
}

func (sc *streamConn) readLoop(br *bufio.Reader) {
	var buf []byte
	for {
		rec, err := readFrame(br, &buf)
		if err != nil {
			sc.markDead(fmt.Errorf("reefstream: connection lost: %w", err))
			return
		}
		if rec.Op == durable.OpStreamDeliver {
			// Pushed delivery: buffer it on its consumer session. The
			// events get their own allocation — they outlive the read
			// buffer, handed to the application by FetchEvents.
			cid, evs, derr := decodeDeliver(rec.Payload, nil)
			if derr != nil {
				sc.markDead(derr)
				return
			}
			sc.dispatchDeliver(cid, evs)
			continue
		}
		if rec.Op != durable.OpStreamAck {
			sc.markDead(fmt.Errorf("%w: unexpected op %v from server", ErrBadFrame, rec.Op))
			return
		}
		a, err := decodeAck(rec.Payload)
		if err != nil {
			sc.markDead(err)
			return
		}
		sc.acks.Add(1)
		sc.wmu.Lock()
		ch := sc.waiters[a.Seq]
		delete(sc.waiters, a.Seq)
		sc.wmu.Unlock()
		if ch != nil {
			ch <- a
		}
	}
}

// beginCall registers an ack waiter under the next sequence number.
// Every acked verb (publish, subscribe, consume-ack) claims its slot
// here before framing, so the sequence space stays shared and FIFO.
func (sc *streamConn) beginCall() (uint64, chan ack, error) {
	sc.wmu.Lock()
	if sc.waiters == nil {
		sc.wmu.Unlock()
		return 0, nil, sc.deadErr
	}
	sc.nextSeq++
	seq := sc.nextSeq
	waiter := waiterPool.Get().(chan ack)
	sc.waiters[seq] = waiter
	sc.wmu.Unlock()
	return seq, waiter, nil
}

// finishCall queues the framed call and waits for its ack. The
// connection's watchdog bounds the wait when the caller's context
// cannot (markDead fails every waiter), so the no-deadline hot path is
// a plain channel receive, not a select.
func (sc *streamConn) finishCall(ctx context.Context, seq uint64, waiter chan ack, fp *[]byte) (ack, error) {
	done := ctx.Done()
	// Fast path: the write queue almost always has room, and the
	// non-blocking send is far cheaper than a three-way select.
	select {
	case sc.writeCh <- fp:
	default:
		select {
		case sc.writeCh <- fp:
		case <-sc.dead:
			sc.forget(seq)
			return ack{}, sc.deadErr
		case <-done:
			sc.forget(seq)
			return ack{}, ctx.Err()
		}
	}

	var a ack
	if done == nil {
		a = <-waiter
	} else {
		select {
		case a = <-waiter:
		case <-done:
			// The abandoned channel may still receive a late ack; it is
			// dropped, not pooled.
			sc.forget(seq)
			return ack{}, ctx.Err()
		}
	}
	waiterPool.Put(waiter)
	if a.connDead {
		return ack{}, sc.deadErr
	}
	return a, nil
}

// roundTrip queues one publish frame and waits for its ack. A trace ID
// carried by ctx rides the frame's optional trailing field, stitching
// the publish into the server's span ring.
func (sc *streamConn) roundTrip(ctx context.Context, payload []byte) (int, error) {
	seq, waiter, err := sc.beginCall()
	if err != nil {
		return 0, err
	}
	tr, _ := trace.FromContext(ctx)
	fp := framePool.Get().(*[]byte)
	*fp = appendPublishFrame((*fp)[:0], seq, payload, tr)
	a, err := sc.finishCall(ctx, seq, waiter, fp)
	if err != nil {
		return 0, err
	}
	if a.Status != StatusOK {
		return int(a.Delivered), &StatusError{Status: a.Status, Message: a.Message}
	}
	return int(a.Delivered), nil
}

// forget abandons a waiter (timeout, cancellation, queue failure) so a
// late ack does not leak the channel entry.
func (sc *streamConn) forget(seq uint64) {
	sc.wmu.Lock()
	if sc.waiters != nil {
		delete(sc.waiters, seq)
	}
	sc.wmu.Unlock()
}
