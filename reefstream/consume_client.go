package reefstream

import (
	"context"
	"errors"
	"sync"
	"time"

	"reef"
)

// DefaultCreditWindow is the credit a consumer session extends to the
// server on attach: the server may have this many delivered-but-not-yet
// -consumed events in flight toward the client. FetchEvents replenishes
// exactly what it hands to the application, so the window is conserved.
const DefaultCreditWindow = MaxFrameEvents

// clientConsumer is one attached (user, subID) session on one
// connection: the buffer the read loop pushes deliveries into and the
// ready channel FetchEvents sleeps on.
type clientConsumer struct {
	cid uint64

	mu  sync.Mutex
	buf []reef.DeliveredEvent

	ready chan struct{} // 1-buffered edge trigger: buf went non-empty
}

// pop removes up to max buffered events (all of them when max <= 0).
func (cc *clientConsumer) pop(max int) []reef.DeliveredEvent {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	n := len(cc.buf)
	if max > 0 && n > max {
		n = max
	}
	if n == 0 {
		return nil
	}
	out := make([]reef.DeliveredEvent, n)
	copy(out, cc.buf)
	rem := copy(cc.buf, cc.buf[n:])
	for i := rem; i < len(cc.buf); i++ {
		cc.buf[i] = reef.DeliveredEvent{}
	}
	cc.buf = cc.buf[:rem]
	return out
}

// dispatchDeliver hands one pushed batch to its consumer session. An
// unknown consumer ID means the session raced detachment; the dropped
// events redeliver after their lease, so dropping here is safe.
func (sc *streamConn) dispatchDeliver(cid uint64, evs []reef.DeliveredEvent) {
	if len(evs) == 0 {
		return
	}
	sc.cmu.Lock()
	cc := sc.byCID[cid]
	sc.cmu.Unlock()
	if cc == nil {
		return
	}
	cc.mu.Lock()
	cc.buf = append(cc.buf, evs...)
	cc.mu.Unlock()
	select {
	case cc.ready <- struct{}{}:
	default:
	}
}

// consumer returns the session for (user, subID), attaching one over
// the wire if this connection has none yet. Attach is single-flighted
// per connection; the session registers before the subscribe round trip
// so a push racing the subscribe ack is not dropped.
func (sc *streamConn) consumer(ctx context.Context, user, subID string) (*clientConsumer, error) {
	key := user + "\x00" + subID
	sc.cmu.Lock()
	cc := sc.consumers[key]
	sc.cmu.Unlock()
	if cc != nil {
		return cc, nil
	}
	sc.attachMu.Lock()
	defer sc.attachMu.Unlock()
	sc.cmu.Lock()
	if cc = sc.consumers[key]; cc != nil {
		sc.cmu.Unlock()
		return cc, nil
	}
	sc.nextCID++
	cid := sc.nextCID
	cc = &clientConsumer{cid: cid, ready: make(chan struct{}, 1)}
	sc.consumers[key] = cc
	sc.byCID[cid] = cc
	sc.cmu.Unlock()

	seq, waiter, err := sc.beginCall()
	if err == nil {
		fp := framePool.Get().(*[]byte)
		*fp = appendSubscribeFrame((*fp)[:0], subscribe{
			Seq: seq, CID: cid, Credit: DefaultCreditWindow, User: user, SubID: subID,
		})
		var a ack
		if a, err = sc.finishCall(ctx, seq, waiter, fp); err == nil && a.Status != StatusOK {
			err = &StatusError{Status: a.Status, Message: a.Message}
		}
	}
	if err != nil {
		sc.cmu.Lock()
		delete(sc.consumers, key)
		delete(sc.byCID, cid)
		sc.cmu.Unlock()
		return nil, err
	}
	return cc, nil
}

// sendCredit queues a fire-and-forget credit grant.
func (sc *streamConn) sendCredit(cid uint64, n int) {
	if n <= 0 {
		return
	}
	fp := framePool.Get().(*[]byte)
	*fp = appendCreditFrame((*fp)[:0], credit{CID: cid, N: uint64(n)})
	select {
	case sc.writeCh <- fp:
	default:
		select {
		case sc.writeCh <- fp:
		case <-sc.dead:
			framePool.Put(fp)
		}
	}
}

// FetchEvents leases up to max retained events of one reliable
// subscription over the stream. Unlike the REST fetch it does not poll:
// the server pushes events into the session's buffer the moment they
// are retained, and FetchEvents blocks — bounded by ctx or the client's
// call timeout — until something is buffered, returning an empty batch
// only when the bound expires with nothing delivered. Lease, ordering
// and redelivery semantics are the deployment's own (the push path
// calls the same queue Fetch the REST endpoint does).
//
// A connection failure mid-wait is retried once on a fresh connection;
// after a redial the session re-attaches transparently and the unacked
// window redelivers under its lease.
func (c *Client) FetchEvents(ctx context.Context, user, subID string, max int) ([]reef.DeliveredEvent, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		sc, err := c.getConn(ctx)
		if err != nil {
			return nil, err
		}
		evs, err := sc.fetchEvents(ctx, c.callTimeout, user, subID, max)
		if err == nil {
			return evs, nil
		}
		var se *StatusError
		if errors.As(err, &se) || ctx.Err() != nil || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		c.dropConn(sc)
		lastErr = err
	}
	return nil, lastErr
}

func (sc *streamConn) fetchEvents(ctx context.Context, callTimeout time.Duration, user, subID string, max int) ([]reef.DeliveredEvent, error) {
	cc, err := sc.consumer(ctx, user, subID)
	if err != nil {
		return nil, err
	}
	var bound <-chan time.Time
	if ctx.Done() == nil && callTimeout > 0 {
		t := time.NewTimer(callTimeout)
		defer t.Stop()
		bound = t.C
	}
	for {
		if evs := cc.pop(max); len(evs) > 0 {
			sc.sendCredit(cc.cid, len(evs))
			return evs, nil
		}
		select {
		case <-cc.ready:
		case <-sc.dead:
			return nil, sc.deadErr
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-bound:
			return nil, nil
		}
	}
}

// Ack advances the subscription's durable cumulative cursor (or, with
// nack set, requests immediate redelivery) over the stream. Acks share
// the pipelined sequence space with publishes, so a consumer can ack
// while deliveries keep flowing.
func (c *Client) Ack(ctx context.Context, user, subID string, seq int64, nack bool) error {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		sc, err := c.getConn(ctx)
		if err != nil {
			return err
		}
		err = sc.consumeAck(ctx, user, subID, seq, nack)
		if err == nil {
			return nil
		}
		var se *StatusError
		if errors.As(err, &se) || ctx.Err() != nil || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		c.dropConn(sc)
		lastErr = err
	}
	return lastErr
}

func (sc *streamConn) consumeAck(ctx context.Context, user, subID string, seq int64, nack bool) error {
	cc, err := sc.consumer(ctx, user, subID)
	if err != nil {
		return err
	}
	callSeq, waiter, err := sc.beginCall()
	if err != nil {
		return err
	}
	fp := framePool.Get().(*[]byte)
	*fp = appendConsumeAckFrame((*fp)[:0], consumeAck{
		Seq: callSeq, CID: cc.cid, AckSeq: seq, Nack: nack,
	})
	a, err := sc.finishCall(ctx, callSeq, waiter, fp)
	if err != nil {
		return err
	}
	if a.Status != StatusOK {
		return &StatusError{Status: a.Status, Message: a.Message}
	}
	return nil
}
