package reefstream

import (
	"bufio"
	"context"
	"fmt"
	"sync"
	"time"

	"reef"
)

// redeliverTick is the coarse fallback poll interval of a consumer
// pusher. The append notify hook wakes the pusher for new events; the
// tick only covers what the hook cannot signal — leases expiring on
// events that were pushed but never acked.
const redeliverTick = 100 * time.Millisecond

// connState is the per-connection state shared between the frame-read
// goroutine and the consumer pushers it spawns: the mutex-serialized
// writer (acks and pushed deliveries interleave on one socket) and the
// live consumer sessions keyed by client-assigned consumer ID.
type connState struct {
	s *Server

	wmu  sync.Mutex
	bw   *bufio.Writer
	werr error // sticky: first write failure poisons the connection

	cmu       sync.Mutex
	consumers map[uint64]*consumerState
	closed    bool

	pushers sync.WaitGroup
}

func newConnState(s *Server, bw *bufio.Writer) *connState {
	return &connState{s: s, bw: bw, consumers: make(map[uint64]*consumerState)}
}

// write ships one or more already-framed messages and flushes, under
// the connection write lock. Each flush is one syscall; coalescing
// happens upstream (publish acks batch per read pass, deliveries batch
// per fetch).
func (cs *connState) write(frame []byte) error {
	cs.wmu.Lock()
	defer cs.wmu.Unlock()
	if cs.werr != nil {
		return cs.werr
	}
	if _, err := cs.bw.Write(frame); err != nil {
		cs.werr = err
		return err
	}
	if err := cs.bw.Flush(); err != nil {
		cs.werr = err
	}
	return cs.werr
}

// consumerState is one attached (user, subscription) consumer: its
// remaining credit and the wake channel its pusher sleeps on. The wake
// channel is 1-buffered and shared between the queue's append hook and
// credit grants — an edge trigger, re-checked by fetching.
type consumerState struct {
	cid   uint64
	user  string
	subID string

	mu     sync.Mutex
	credit int

	wake   chan struct{}
	done   chan struct{}
	cancel func() // unregisters the queue notify hook
}

func (c *consumerState) take(max int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.credit
	if n > max {
		n = max
	}
	c.credit -= n
	return n
}

func (c *consumerState) refund(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	c.credit += n
	c.mu.Unlock()
}

// attach registers a consumer session and starts its pusher. The error
// (unsupported deployment, unknown subscription, best-effort tier)
// travels back in the subscribe frame's ack.
func (cs *connState) attach(sub subscribe) error {
	if cs.s.stream == nil {
		return fmt.Errorf("%w: deployment has no streaming delivery surface", reef.ErrUnsupported)
	}
	c := &consumerState{
		cid:    sub.CID,
		user:   sub.User,
		subID:  sub.SubID,
		credit: int(sub.Credit),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	cancel, err := cs.s.stream.NotifyEvents(sub.User, sub.SubID, c.wake)
	if err != nil {
		return err
	}
	c.cancel = cancel
	cs.cmu.Lock()
	if cs.closed {
		cs.cmu.Unlock()
		cancel()
		return reef.ErrClosed
	}
	if _, dup := cs.consumers[sub.CID]; dup {
		cs.cmu.Unlock()
		cancel()
		return fmt.Errorf("%w: consumer id %d already attached", reef.ErrInvalidArgument, sub.CID)
	}
	cs.consumers[sub.CID] = c
	cs.pushers.Add(1)
	cs.cmu.Unlock()
	cs.s.mConsumers.Add(1)
	go cs.runPusher(c)
	return nil
}

// consumeAck applies one pipelined cumulative ack (or nack) for an
// attached consumer.
func (cs *connState) consumeAck(ca consumeAck) error {
	cs.cmu.Lock()
	c := cs.consumers[ca.CID]
	cs.cmu.Unlock()
	if c == nil {
		return fmt.Errorf("%w: unknown consumer id %d", reef.ErrInvalidArgument, ca.CID)
	}
	return cs.s.stream.Ack(context.Background(), c.user, c.subID, ca.AckSeq, ca.Nack)
}

// addCredit applies a fire-and-forget credit grant. An unknown consumer
// ID is ignored: credit frames race detachment by design.
func (cs *connState) addCredit(cr credit) {
	cs.cmu.Lock()
	c := cs.consumers[cr.CID]
	cs.cmu.Unlock()
	if c == nil {
		return
	}
	c.refund(int(cr.N))
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// closeConsumers tears down every session when the connection ends:
// notify hooks unregister, pushers drain. Unacked deliveries need no
// cleanup — their leases expire and they redeliver, here or on a
// promoted replica.
func (cs *connState) closeConsumers() {
	cs.cmu.Lock()
	cs.closed = true
	consumers := cs.consumers
	cs.consumers = nil
	cs.cmu.Unlock()
	for _, c := range consumers {
		c.cancel()
		close(c.done)
	}
	cs.s.mConsumers.Add(-int64(len(consumers)))
	cs.pushers.Wait()
}

// runPusher is one consumer's push loop: drain whatever credit and
// retained events allow, then sleep until the append hook or a credit
// grant wakes it (or the redelivery tick fires). It exits when the
// session closes or the connection's writer dies.
func (cs *connState) runPusher(c *consumerState) {
	defer cs.pushers.Done()
	var evs []reef.DeliveredEvent
	var frame []byte
	tick := time.NewTicker(redeliverTick)
	defer tick.Stop()
	for {
		if !cs.push(c, &evs, &frame) {
			return
		}
		select {
		case <-c.done:
			return
		case <-c.wake:
		case <-tick.C:
		}
	}
}

// push leases up to the consumer's credit in MaxFrameEvents chunks and
// ships each chunk as one deliver frame, reusing the caller's event and
// frame buffers across fetches (the zero-alloc encode path). Unused
// credit is refunded. Returns false when pushing must stop for good.
func (cs *connState) push(c *consumerState, evs *[]reef.DeliveredEvent, frame *[]byte) bool {
	ctx := context.Background()
	for {
		n := c.take(MaxFrameEvents)
		if n == 0 {
			return true
		}
		batch, err := cs.s.stream.FetchEventsInto(ctx, c.user, c.subID, (*evs)[:0], n)
		*evs = batch[:0]
		if err != nil {
			// Subscription removed or deployment closing: nothing left
			// to push. The client learns via its next control call.
			c.refund(n)
			return false
		}
		if len(batch) == 0 {
			c.refund(n)
			return true
		}
		c.refund(n - len(batch))
		*frame = appendDeliverFrame((*frame)[:0], c.cid, batch)
		pushed := len(batch)
		clear(batch)
		if cs.write(*frame) != nil {
			return false
		}
		cs.s.mDelivered.Add(int64(pushed))
		cs.s.mFramesOut.Add(1)
		if len(batch) < n {
			return true
		}
	}
}
