package reefstream_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"reef"
	"reef/reefclient"
	"reef/reefhttp"
	"reef/reefstream"
)

// subscribeReliable registers an at-least-once subscription for user on
// feed with a short ack timeout, so lease expiry is testable in real
// time. The subscription ID is the feed URL.
func subscribeReliable(t *testing.T, dep *reef.Centralized, user, feed string, ackTimeout time.Duration) {
	t.Helper()
	_, err := dep.Subscribe(context.Background(), user, feed,
		reef.WithGuarantee(reef.AtLeastOnce),
		reef.WithAckTimeout(ackTimeout),
		reef.WithMaxAttempts(20))
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
}

// collectSeqs drains FetchEvents until every sequence in [lo, hi] has
// been seen or the deadline passes, returning the full set observed.
func collectSeqs(t *testing.T, fetch func(ctx context.Context, max int) ([]reef.DeliveredEvent, error), lo, hi int64) map[int64]int {
	t.Helper()
	seen := make(map[int64]int)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		evs, err := fetch(ctx, 64)
		cancel()
		if err != nil && ctx.Err() == nil {
			t.Fatalf("FetchEvents: %v", err)
		}
		for _, ev := range evs {
			seen[ev.Seq]++
		}
		complete := true
		for s := lo; s <= hi; s++ {
			if seen[s] == 0 {
				complete = false
				break
			}
		}
		if complete {
			return seen
		}
	}
	t.Fatalf("never saw all of [%d, %d]; got %v", lo, hi, seen)
	return nil
}

// TestStreamConsumeAckE2E pins the happy path of the consume plane:
// events published after a consumer attaches are pushed without
// polling, cumulative acks retire them, and a nack redelivers.
func TestStreamConsumeAckE2E(t *testing.T) {
	const feed = "http://h.test/f"
	const user = "user-000"
	dep := newDep(t, feed, 1)
	// A long ack timeout: no lease expires mid-test, so every delivery
	// count below is exact.
	subscribeReliable(t, dep, user, feed, time.Minute)
	srv, err := reefstream.Listen("127.0.0.1:0", dep)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	cl := reefstream.NewClient(srv.Addr().String())
	defer cl.Close()

	ctx := context.Background()
	// Attach before publishing: the first fetch parks on the push
	// channel, so a non-empty result proves the notify hook fired.
	attach, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
	if evs, err := cl.FetchEvents(attach, user, feed, 16); err != nil && attach.Err() == nil {
		t.Fatalf("attach FetchEvents: %v", err)
	} else if len(evs) != 0 {
		t.Fatalf("fetched %d events before any publish", len(evs))
	}
	cancel()

	const total = 5
	for i := 0; i < total; i++ {
		if _, err := cl.PublishEvent(ctx, feedEvent(feed)); err != nil {
			t.Fatalf("PublishEvent: %v", err)
		}
	}

	// Delivery is in order: a leased event blocks everything behind it,
	// so the consumer acks cumulatively as events arrive. With a
	// one-minute lease and prompt acks, every seq must arrive exactly
	// once.
	fetch := func(ctx context.Context, max int) ([]reef.DeliveredEvent, error) {
		return cl.FetchEvents(ctx, user, feed, max)
	}
	seen := make(map[int64]int)
	deadline := time.Now().Add(10 * time.Second)
	for int64(len(seen)) < total && time.Now().Before(deadline) {
		fctx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
		evs, err := fetch(fctx, 64)
		cancel()
		if err != nil && fctx.Err() == nil {
			t.Fatalf("FetchEvents: %v", err)
		}
		if len(evs) == 0 {
			continue
		}
		for _, ev := range evs {
			seen[ev.Seq]++
		}
		if err := cl.Ack(ctx, user, feed, evs[len(evs)-1].Seq, false); err != nil {
			t.Fatalf("ack: %v", err)
		}
	}
	for s := int64(1); s <= total; s++ {
		if seen[s] != 1 {
			t.Errorf("seq %d delivered %d times with prompt acks, want 1", s, seen[s])
		}
	}

	// Nack path: one more event, leased but unacked; the nack skips the
	// remainder of its one-minute lease so it redelivers after backoff.
	// The five acked events must never reappear.
	if _, err := cl.PublishEvent(ctx, feedEvent(feed)); err != nil {
		t.Fatalf("PublishEvent: %v", err)
	}
	first := collectSeqs(t, fetch, total+1, total+1)
	if err := cl.Ack(ctx, user, feed, total+1, true); err != nil {
		t.Fatalf("nack: %v", err)
	}
	again := collectSeqs(t, fetch, total+1, total+1)
	for s := int64(1); s <= total; s++ {
		if first[s] != 0 || again[s] != 0 {
			t.Errorf("acked seq %d redelivered after nack", s)
		}
	}
	if err := cl.Ack(ctx, user, feed, total+1, false); err != nil {
		t.Fatalf("ack: %v", err)
	}
	st, err := dep.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st["delivery_retained"] != 0 {
		t.Errorf("delivery_retained = %v after final ack, want 0", st["delivery_retained"])
	}
}

// TestStreamConsumerKillResumeE2E kills a streaming consumer mid-window
// and resumes over both transports. The invariant: acked events never
// reappear, and every unacked event survives the kill — first leased to
// a REST poller once the dead consumer's leases expire, then, after new
// publishes, pushed to a fresh stream consumer.
func TestStreamConsumerKillResumeE2E(t *testing.T) {
	const feed = "http://h.test/f"
	const user = "user-000"
	dep := newDep(t, feed, 1)
	subscribeReliable(t, dep, user, feed, 300*time.Millisecond)
	srv, err := reefstream.Listen("127.0.0.1:0", dep)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(reefhttp.NewHandler(dep, nil))
	defer ts.Close()
	rcli := reefclient.New(ts.URL, reefclient.WithHTTPClient(ts.Client()))
	defer rcli.Close()

	ctx := context.Background()
	const total = 10
	for i := 0; i < total; i++ {
		if _, err := dep.PublishEvent(ctx, feedEvent(feed)); err != nil {
			t.Fatalf("PublishEvent: %v", err)
		}
	}

	// Consumer one: stream, receive the window, ack through 3, die with
	// 4..10 leased but unacked.
	cl1 := reefstream.NewClient(srv.Addr().String())
	collectSeqs(t, func(ctx context.Context, max int) ([]reef.DeliveredEvent, error) {
		return cl1.FetchEvents(ctx, user, feed, max)
	}, 1, total)
	if err := cl1.Ack(ctx, user, feed, 3, false); err != nil {
		t.Fatalf("ack: %v", err)
	}
	cl1.Close()

	// Resume over REST. The dead consumer's leases expire after the ack
	// timeout; the poller must then see exactly 4..10 — no gap, and
	// nothing at or below the acked cursor.
	seen := collectSeqs(t, func(ctx context.Context, max int) ([]reef.DeliveredEvent, error) {
		return rcli.FetchEvents(ctx, user, feed, max)
	}, 4, total)
	for s := int64(1); s <= 3; s++ {
		if seen[s] != 0 {
			t.Errorf("acked seq %d redelivered after consumer kill", s)
		}
	}
	if err := rcli.Ack(ctx, user, feed, total, false); err != nil {
		t.Fatalf("REST ack: %v", err)
	}

	// Resume over a fresh stream: only the new publishes arrive.
	for i := 0; i < 3; i++ {
		if _, err := dep.PublishEvent(ctx, feedEvent(feed)); err != nil {
			t.Fatalf("PublishEvent: %v", err)
		}
	}
	cl2 := reefstream.NewClient(srv.Addr().String())
	defer cl2.Close()
	resumed := collectSeqs(t, func(ctx context.Context, max int) ([]reef.DeliveredEvent, error) {
		return cl2.FetchEvents(ctx, user, feed, max)
	}, total+1, total+3)
	for s := range resumed {
		if s <= total {
			t.Errorf("seq %d redelivered to resumed consumer after cumulative ack %d", s, total)
		}
	}
	if err := cl2.Ack(ctx, user, feed, total+3, false); err != nil {
		t.Fatalf("ack: %v", err)
	}
	st, err := dep.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st["delivery_retained"] != 0 {
		t.Errorf("delivery_retained = %v after final ack, want 0", st["delivery_retained"])
	}
}

// TestStreamConsumeUnsupportedSubscription pins server verdicts: a
// best-effort subscription and an unknown subscription both fail the
// attach with typed errors rather than hanging the consumer.
func TestStreamConsumeUnsupportedSubscription(t *testing.T) {
	const feed = "http://h.test/f"
	dep := newDep(t, feed, 1) // user-000 subscribes best-effort
	srv, err := reefstream.Listen("127.0.0.1:0", dep)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	cl := reefstream.NewClient(srv.Addr().String())
	defer cl.Close()

	ctx := context.Background()
	if _, err := cl.FetchEvents(ctx, "user-000", feed, 8); err == nil {
		t.Error("FetchEvents on a best-effort subscription succeeded, want typed refusal")
	}
	if _, err := cl.FetchEvents(ctx, "nobody", feed, 8); err == nil {
		t.Error("FetchEvents for an unknown user succeeded, want typed refusal")
	}
}
