package reefstream

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"reef"
	"reef/internal/durable"
	"reef/internal/trace"
)

func sampleEvents() []reef.Event {
	return []reef.Event{
		{
			Source:    "crawler-3",
			Attrs:     map[string]string{"type": "feed-item", "feed": "http://h.test/f", "title": "hello"},
			Payload:   []byte("body bytes \x00\xff"),
			Published: time.Unix(1700000000, 42).UTC(),
		},
		{Attrs: map[string]string{"k": ""}},
		{Source: "s", Attrs: map[string]string{"a": "b"}, Published: time.Time{}},
	}
}

// TestPublishCodecRoundTrip pins the binary event encoding: every field
// survives encode→decode, zero times stay zero, and the frame decodes
// from its durable envelope.
func TestPublishCodecRoundTrip(t *testing.T) {
	evs := sampleEvents()
	var wantTr trace.ID
	copy(wantTr[:], "0123456789abcdef")
	frame := appendPublishFrame(nil, 99, EncodeEvents(evs), wantTr)
	rec, n, err := durable.DecodeFrame(frame)
	if err != nil || n != len(frame) {
		t.Fatalf("DecodeFrame = (%d, %v)", n, err)
	}
	if rec.Op != durable.OpStreamPublish {
		t.Fatalf("op = %v", rec.Op)
	}
	seq, tr, got, err := decodePublish(rec.Payload, nil)
	if err != nil {
		t.Fatalf("decodePublish: %v", err)
	}
	if seq != 99 {
		t.Errorf("seq = %d", seq)
	}
	if tr != wantTr {
		t.Errorf("trace = %v, want %v", tr, wantTr)
	}
	// An untraced frame decodes with a zero trace ID and is byte-for-byte
	// what the pre-trace wire produced (no trailer).
	plain := appendPublishFrame(nil, 99, EncodeEvents(evs), trace.ID{})
	if len(plain) != len(frame)-trace.IDLen {
		t.Errorf("untraced frame len = %d, want %d", len(plain), len(frame)-trace.IDLen)
	}
	rec2, _, err := durable.DecodeFrame(plain)
	if err != nil {
		t.Fatalf("DecodeFrame(plain): %v", err)
	}
	if _, tr2, _, err := decodePublish(rec2.Payload, nil); err != nil || !tr2.IsZero() {
		t.Errorf("untraced decode = (trace %v, %v), want zero trace", tr2, err)
	}
	if len(got) != len(evs) {
		t.Fatalf("decoded %d events, want %d", len(got), len(evs))
	}
	for i, ev := range got {
		want := evs[i]
		if ev.Source != want.Source {
			t.Errorf("event %d source = %q, want %q", i, ev.Source, want.Source)
		}
		if len(ev.Attrs) != len(want.Attrs) {
			t.Errorf("event %d attrs = %v, want %v", i, ev.Attrs, want.Attrs)
		}
		for k, v := range want.Attrs {
			if ev.Attrs[k] != v {
				t.Errorf("event %d attr %q = %q, want %q", i, k, ev.Attrs[k], v)
			}
		}
		if string(ev.Payload) != string(want.Payload) {
			t.Errorf("event %d payload mismatch", i)
		}
		if !ev.Published.Equal(want.Published) {
			t.Errorf("event %d published = %v, want %v", i, ev.Published, want.Published)
		}
	}
}

func TestAckCodecRoundTrip(t *testing.T) {
	for _, want := range []ack{
		{Seq: 1, Delivered: 0},
		{Seq: 1<<63 + 5, Delivered: 12345, Status: StatusInvalidArgument, Message: "reef: invalid argument: no attrs"},
		{Status: StatusUnavailable, Message: ""},
	} {
		frame := appendAckFrame(nil, want)
		rec, _, err := durable.DecodeFrame(frame)
		if err != nil {
			t.Fatalf("DecodeFrame: %v", err)
		}
		got, err := decodeAck(rec.Payload)
		if err != nil {
			t.Fatalf("decodeAck: %v", err)
		}
		if got != want {
			t.Errorf("ack round trip = %+v, want %+v", got, want)
		}
	}
}

// sampleDelivered wraps the sample events in delivery metadata for the
// consume-plane codecs.
func sampleDelivered() []reef.DeliveredEvent {
	evs := sampleEvents()
	out := make([]reef.DeliveredEvent, len(evs))
	for i, ev := range evs {
		out[i] = reef.DeliveredEvent{Seq: int64(i) + 10, Attempts: i + 1, Event: ev}
	}
	return out
}

// FuzzStreamDecode extends the FuzzWALDecode contract to the stream
// payload decoders: arbitrary bytes inside a valid frame envelope must
// produce a typed error (ErrBadFrame) or a valid decode — never a
// panic, never an unbounded allocation. The consume payload is run
// through all four consume-plane decoders (subscribe, deliver,
// consume-ack, credit) with a round-trip invariant on clean decodes.
func FuzzStreamDecode(f *testing.F) {
	f.Add(EncodeEvents(sampleEvents()), appendAckFrame(nil, ack{Seq: 9, Delivered: 3})[10:], []byte{})
	// A publish body with seq prefix, as decodePublish sees it.
	pub := binary.LittleEndian.AppendUint64(nil, 7)
	pub = append(pub, EncodeEvents(sampleEvents())...)
	f.Add(pub, []byte{}, []byte{})
	// The same publish body with a 16-byte trace trailer.
	f.Add(append(append([]byte{}, pub...), []byte("0123456789abcdef")...), []byte{}, []byte{})
	// A trailer of the wrong length must be rejected, not absorbed.
	f.Add(append(append([]byte{}, pub...), []byte("0123456")...), []byte{}, []byte{})
	// Corrupt length prefix: claims more events than bytes.
	huge := binary.LittleEndian.AppendUint64(nil, 1)
	huge = binary.AppendUvarint(huge, 1<<40)
	f.Add(huge, []byte("x"), []byte("x"))
	// Truncated mid-event.
	trunc := binary.LittleEndian.AppendUint64(nil, 2)
	trunc = append(trunc, EncodeEvents(sampleEvents())...)
	f.Add(trunc[:len(trunc)-9], []byte{0, 0, 0}, []byte{0, 0, 0})
	f.Add([]byte{}, []byte{}, []byte{})
	// Clean consume payloads, one per op.
	subPayload := appendSubscribeFrame(nil, subscribe{Seq: 3, CID: 1, Credit: 4096, User: "bob", SubID: "http://h.test/f"})
	f.Add([]byte{}, []byte{}, subPayload[10:])
	delPayload := appendDeliverFrame(nil, 1, sampleDelivered())
	f.Add([]byte{}, []byte{}, delPayload[10:])
	// The same deliver payload truncated mid-event.
	f.Add([]byte{}, []byte{}, delPayload[10:len(delPayload)-5])
	cackPayload := appendConsumeAckFrame(nil, consumeAck{Seq: 4, CID: 1, AckSeq: 12, Nack: true})
	f.Add([]byte{}, []byte{}, cackPayload[10:])
	creditPayload := appendCreditFrame(nil, credit{CID: 1, N: 64})
	f.Add([]byte{}, []byte{}, creditPayload[10:])

	f.Fuzz(func(t *testing.T, pubPayload, ackPayload, consumePayload []byte) {
		if seq, tr, evs, err := decodePublish(pubPayload, nil); err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("decodePublish returned untyped error %v", err)
			}
		} else {
			// A clean decode must re-encode to an equivalent frame: the
			// re-encoded form must decode to the same events (attribute
			// order may differ, so compare decoded-to-decoded) and the
			// same trace ID.
			re := appendPublishFrame(nil, seq, EncodeEvents(evs), tr)
			rec, _, derr := durable.DecodeFrame(re)
			if derr != nil {
				t.Fatalf("re-encoded frame does not decode: %v", derr)
			}
			seq2, tr2, evs2, derr := decodePublish(rec.Payload, nil)
			if derr != nil || seq2 != seq || tr2 != tr || len(evs2) != len(evs) {
				t.Fatalf("re-decode = (%d, %v, %d events, %v), want (%d, %v, %d, nil)",
					seq2, tr2, len(evs2), derr, seq, tr, len(evs))
			}
		}
		if _, err := decodeAck(ackPayload); err != nil && !errors.Is(err, ErrBadFrame) {
			t.Fatalf("decodeAck returned untyped error %v", err)
		}

		if s, err := decodeSubscribe(consumePayload); err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("decodeSubscribe returned untyped error %v", err)
			}
		} else {
			re := appendSubscribeFrame(nil, s)
			rec, _, derr := durable.DecodeFrame(re)
			if derr != nil {
				t.Fatalf("re-encoded subscribe does not frame: %v", derr)
			}
			if s2, derr := decodeSubscribe(rec.Payload); derr != nil || s2 != s {
				t.Fatalf("subscribe re-decode = (%+v, %v), want (%+v, nil)", s2, derr, s)
			}
		}
		if cid, evs, err := decodeDeliver(consumePayload, nil); err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("decodeDeliver returned untyped error %v", err)
			}
		} else {
			re := appendDeliverFrame(nil, cid, evs)
			rec, _, derr := durable.DecodeFrame(re)
			if derr != nil {
				t.Fatalf("re-encoded deliver does not frame: %v", derr)
			}
			cid2, evs2, derr := decodeDeliver(rec.Payload, nil)
			if derr != nil || cid2 != cid || len(evs2) != len(evs) {
				t.Fatalf("deliver re-decode = (%d, %d events, %v), want (%d, %d, nil)",
					cid2, len(evs2), derr, cid, len(evs))
			}
			for i := range evs {
				if evs2[i].Seq != evs[i].Seq || evs2[i].Attempts != evs[i].Attempts {
					t.Fatalf("delivery %d metadata = (%d, %d), want (%d, %d)",
						i, evs2[i].Seq, evs2[i].Attempts, evs[i].Seq, evs[i].Attempts)
				}
			}
		}
		if ca, err := decodeConsumeAck(consumePayload); err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("decodeConsumeAck returned untyped error %v", err)
			}
		} else {
			re := appendConsumeAckFrame(nil, ca)
			rec, _, derr := durable.DecodeFrame(re)
			if derr != nil {
				t.Fatalf("re-encoded consume-ack does not frame: %v", derr)
			}
			if ca2, derr := decodeConsumeAck(rec.Payload); derr != nil || ca2 != ca {
				t.Fatalf("consume-ack re-decode = (%+v, %v), want (%+v, nil)", ca2, derr, ca)
			}
		}
		if cr, err := decodeCredit(consumePayload); err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("decodeCredit returned untyped error %v", err)
			}
		} else {
			re := appendCreditFrame(nil, cr)
			rec, _, derr := durable.DecodeFrame(re)
			if derr != nil {
				t.Fatalf("re-encoded credit does not frame: %v", derr)
			}
			if cr2, derr := decodeCredit(rec.Payload); derr != nil || cr2 != cr {
				t.Fatalf("credit re-decode = (%+v, %v), want (%+v, nil)", cr2, derr, cr)
			}
		}
	})
}

// TestConsumeCodecRoundTrip pins the four consume-plane encodings.
func TestConsumeCodecRoundTrip(t *testing.T) {
	wantSub := subscribe{Seq: 11, CID: 3, Credit: 4096, User: "alice", SubID: "http://h.test/f"}
	rec, _, err := durable.DecodeFrame(appendSubscribeFrame(nil, wantSub))
	if err != nil || rec.Op != durable.OpStreamSubscribe {
		t.Fatalf("subscribe frame = (%v, %v)", rec.Op, err)
	}
	if got, err := decodeSubscribe(rec.Payload); err != nil || got != wantSub {
		t.Errorf("subscribe round trip = (%+v, %v), want %+v", got, err, wantSub)
	}

	wantDel := sampleDelivered()
	rec, _, err = durable.DecodeFrame(appendDeliverFrame(nil, 7, wantDel))
	if err != nil || rec.Op != durable.OpStreamDeliver {
		t.Fatalf("deliver frame = (%v, %v)", rec.Op, err)
	}
	cid, got, err := decodeDeliver(rec.Payload, nil)
	if err != nil || cid != 7 || len(got) != len(wantDel) {
		t.Fatalf("deliver round trip = (%d, %d events, %v)", cid, len(got), err)
	}
	for i, d := range got {
		w := wantDel[i]
		if d.Seq != w.Seq || d.Attempts != w.Attempts || d.Event.Source != w.Event.Source ||
			string(d.Event.Payload) != string(w.Event.Payload) || !d.Event.Published.Equal(w.Event.Published) {
			t.Errorf("delivery %d = %+v, want %+v", i, d, w)
		}
	}

	for _, wantCA := range []consumeAck{
		{Seq: 1, CID: 2, AckSeq: 3, Nack: false},
		{Seq: 1 << 60, CID: 1<<64 - 1, AckSeq: -1, Nack: true},
	} {
		rec, _, err = durable.DecodeFrame(appendConsumeAckFrame(nil, wantCA))
		if err != nil || rec.Op != durable.OpStreamConsumeAck {
			t.Fatalf("consume-ack frame = (%v, %v)", rec.Op, err)
		}
		if got, err := decodeConsumeAck(rec.Payload); err != nil || got != wantCA {
			t.Errorf("consume-ack round trip = (%+v, %v), want %+v", got, err, wantCA)
		}
	}

	wantCr := credit{CID: 9, N: 128}
	rec, _, err = durable.DecodeFrame(appendCreditFrame(nil, wantCr))
	if err != nil || rec.Op != durable.OpStreamCredit {
		t.Fatalf("credit frame = (%v, %v)", rec.Op, err)
	}
	if got, err := decodeCredit(rec.Payload); err != nil || got != wantCr {
		t.Errorf("credit round trip = (%+v, %v), want %+v", got, err, wantCr)
	}
}
