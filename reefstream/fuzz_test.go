package reefstream

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"reef"
	"reef/internal/durable"
)

func sampleEvents() []reef.Event {
	return []reef.Event{
		{
			Source:    "crawler-3",
			Attrs:     map[string]string{"type": "feed-item", "feed": "http://h.test/f", "title": "hello"},
			Payload:   []byte("body bytes \x00\xff"),
			Published: time.Unix(1700000000, 42).UTC(),
		},
		{Attrs: map[string]string{"k": ""}},
		{Source: "s", Attrs: map[string]string{"a": "b"}, Published: time.Time{}},
	}
}

// TestPublishCodecRoundTrip pins the binary event encoding: every field
// survives encode→decode, zero times stay zero, and the frame decodes
// from its durable envelope.
func TestPublishCodecRoundTrip(t *testing.T) {
	evs := sampleEvents()
	frame := appendPublishFrame(nil, 99, EncodeEvents(evs))
	rec, n, err := durable.DecodeFrame(frame)
	if err != nil || n != len(frame) {
		t.Fatalf("DecodeFrame = (%d, %v)", n, err)
	}
	if rec.Op != durable.OpStreamPublish {
		t.Fatalf("op = %v", rec.Op)
	}
	seq, got, err := decodePublish(rec.Payload, nil)
	if err != nil {
		t.Fatalf("decodePublish: %v", err)
	}
	if seq != 99 {
		t.Errorf("seq = %d", seq)
	}
	if len(got) != len(evs) {
		t.Fatalf("decoded %d events, want %d", len(got), len(evs))
	}
	for i, ev := range got {
		want := evs[i]
		if ev.Source != want.Source {
			t.Errorf("event %d source = %q, want %q", i, ev.Source, want.Source)
		}
		if len(ev.Attrs) != len(want.Attrs) {
			t.Errorf("event %d attrs = %v, want %v", i, ev.Attrs, want.Attrs)
		}
		for k, v := range want.Attrs {
			if ev.Attrs[k] != v {
				t.Errorf("event %d attr %q = %q, want %q", i, k, ev.Attrs[k], v)
			}
		}
		if string(ev.Payload) != string(want.Payload) {
			t.Errorf("event %d payload mismatch", i)
		}
		if !ev.Published.Equal(want.Published) {
			t.Errorf("event %d published = %v, want %v", i, ev.Published, want.Published)
		}
	}
}

func TestAckCodecRoundTrip(t *testing.T) {
	for _, want := range []ack{
		{Seq: 1, Delivered: 0},
		{Seq: 1<<63 + 5, Delivered: 12345, Status: StatusInvalidArgument, Message: "reef: invalid argument: no attrs"},
		{Status: StatusUnavailable, Message: ""},
	} {
		frame := appendAckFrame(nil, want)
		rec, _, err := durable.DecodeFrame(frame)
		if err != nil {
			t.Fatalf("DecodeFrame: %v", err)
		}
		got, err := decodeAck(rec.Payload)
		if err != nil {
			t.Fatalf("decodeAck: %v", err)
		}
		if got != want {
			t.Errorf("ack round trip = %+v, want %+v", got, want)
		}
	}
}

// FuzzStreamDecode extends the FuzzWALDecode contract to the stream
// payload decoders: arbitrary bytes inside a valid frame envelope must
// produce a typed error (ErrBadFrame) or a valid decode — never a
// panic, never an unbounded allocation.
func FuzzStreamDecode(f *testing.F) {
	f.Add(EncodeEvents(sampleEvents()), appendAckFrame(nil, ack{Seq: 9, Delivered: 3})[10:])
	// A publish body with seq prefix, as decodePublish sees it.
	pub := binary.LittleEndian.AppendUint64(nil, 7)
	pub = append(pub, EncodeEvents(sampleEvents())...)
	f.Add(pub, []byte{})
	// Corrupt length prefix: claims more events than bytes.
	huge := binary.LittleEndian.AppendUint64(nil, 1)
	huge = binary.AppendUvarint(huge, 1<<40)
	f.Add(huge, []byte("x"))
	// Truncated mid-event.
	trunc := binary.LittleEndian.AppendUint64(nil, 2)
	trunc = append(trunc, EncodeEvents(sampleEvents())...)
	f.Add(trunc[:len(trunc)-9], []byte{0, 0, 0})
	f.Add([]byte{}, []byte{})

	f.Fuzz(func(t *testing.T, pubPayload, ackPayload []byte) {
		if seq, evs, err := decodePublish(pubPayload, nil); err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("decodePublish returned untyped error %v", err)
			}
		} else {
			// A clean decode must re-encode to an equivalent frame: the
			// re-encoded form must decode to the same events (attribute
			// order may differ, so compare decoded-to-decoded).
			re := appendPublishFrame(nil, seq, EncodeEvents(evs))
			rec, _, derr := durable.DecodeFrame(re)
			if derr != nil {
				t.Fatalf("re-encoded frame does not decode: %v", derr)
			}
			seq2, evs2, derr := decodePublish(rec.Payload, nil)
			if derr != nil || seq2 != seq || len(evs2) != len(evs) {
				t.Fatalf("re-decode = (%d, %d events, %v), want (%d, %d, nil)",
					seq2, len(evs2), derr, seq, len(evs))
			}
		}
		if _, err := decodeAck(ackPayload); err != nil && !errors.Is(err, ErrBadFrame) {
			t.Fatalf("decodeAck returned untyped error %v", err)
		}
	})
}
