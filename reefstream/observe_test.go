package reefstream_test

import (
	"context"
	"testing"
	"time"

	"reef"
	"reef/internal/metrics"
	"reef/internal/trace"
	"reef/reefstream"
)

// TestStreamTracePropagation pins the trace trailer end to end: a
// publish under a traced context carries the ID over the binary wire,
// and the server records a stream.publish span under it; an untraced
// publish records nothing.
func TestStreamTracePropagation(t *testing.T) {
	const feed = "http://h.test/f"
	dep := newDep(t, feed, 1)
	rec := trace.NewRecorder(16)
	srv, err := reefstream.Listen("127.0.0.1:0", dep,
		reefstream.WithNode("n1"), reefstream.WithTraceRecorder(rec))
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	cl := reefstream.NewClient(srv.Addr().String())
	defer cl.Close()

	id := trace.NewID()
	ctx := trace.NewContext(context.Background(), id)
	if _, err := cl.PublishEvent(ctx, feedEvent(feed)); err != nil {
		t.Fatalf("traced PublishEvent: %v", err)
	}
	if _, err := cl.PublishEvent(context.Background(), feedEvent(feed)); err != nil {
		t.Fatalf("untraced PublishEvent: %v", err)
	}

	// The span is recorded after the coalesced batch applies; the acks
	// above guarantee both frames were processed.
	deadline := time.Now().Add(2 * time.Second)
	var spans []trace.Span
	for {
		if spans = rec.Spans(id, 0); len(spans) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(spans) != 1 {
		t.Fatalf("traced spans = %d, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Op != "stream.publish" || sp.Node != "n1" || sp.Err != "" {
		t.Errorf("span = %+v, want op stream.publish on n1", sp)
	}
	if got := rec.Total(); got != 1 {
		t.Errorf("recorder total = %d, want 1 (untraced publish must not record)", got)
	}
}

// TestStreamMetrics checks the data-plane instrumentation lands in a
// shared registry: connection gauge, frame/event counters, and the
// coalesced batch-size histogram, plus the client-side ack RTT.
func TestStreamMetrics(t *testing.T) {
	const feed = "http://h.test/f"
	dep := newDep(t, feed, 1)
	reg := metrics.NewRegistry()
	srv, err := reefstream.Listen("127.0.0.1:0", dep, reefstream.WithMetrics(reg))
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	clReg := metrics.NewRegistry()
	cl := reefstream.NewClient(srv.Addr().String(), reefstream.WithClientMetrics(clReg))
	defer cl.Close()

	ctx := context.Background()
	if _, err := cl.PublishEvent(ctx, feedEvent(feed)); err != nil {
		t.Fatalf("PublishEvent: %v", err)
	}
	if _, err := cl.PublishBatch(ctx, []reef.Event{feedEvent(feed), feedEvent(feed)}); err != nil {
		t.Fatalf("PublishBatch: %v", err)
	}

	if got := reg.Counter(metrics.StreamFramesIn.Name).Value(); got != 2 {
		t.Errorf("frames in = %d, want 2", got)
	}
	if got := reg.Counter(metrics.StreamEventsIn.Name).Value(); got != 3 {
		t.Errorf("events in = %d, want 3", got)
	}
	if got := reg.Gauge(metrics.StreamConns.Name).Value(); got != 1 {
		t.Errorf("conns gauge = %d, want 1", got)
	}
	if got := reg.Histogram(metrics.StreamBatchEvents.Name).Count(); got == 0 {
		t.Error("batch histogram has no observations")
	}
	if got := clReg.Histogram(metrics.StreamAckSeconds.Name).Count(); got != 2 {
		t.Errorf("client ack RTT observations = %d, want 2", got)
	}
}
