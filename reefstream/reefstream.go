// Package reefstream is the binary data plane: a persistent-connection,
// length-prefixed streaming protocol that carries events to and from a
// reef deployment without the per-call HTTP/1.1 + JSON envelope the
// REST transport pays. REST (reefclient) remains the control plane —
// subscriptions, recommendations, stats — while this package moves the
// two hot, high-volume verbs: publish (ingest) and reliable consume
// (server-pushed delivery with pipelined acks).
//
// # Wire format
//
// Every message on the wire is one internal/durable record frame
// ([4B body length][4B CRC32-C][1B version][1B op][payload]), so the
// ingest wire format and the WAL/replication format are a single codec
// with a single fuzzer. Seven ops exist only on the wire and never in a
// WAL file:
//
//	OpStreamHello      (8)  JSON handshake, both directions
//	OpStreamPublish    (9)  [8B LE seq][uvarint n][n × event][optional 16B trace ID]
//	OpStreamAck        (10) [8B LE seq][8B LE delivered][1B status][uvarint-len message]
//	OpStreamSubscribe  (11) [8B LE seq][8B LE cid][uvarint credit][uvarint-len user][uvarint-len subID]
//	OpStreamDeliver    (12) [8B LE cid][uvarint n][n × ([8B LE seq][uvarint attempts][event])]
//	OpStreamConsumeAck (13) [8B LE seq][8B LE cid][8B LE ackSeq][1B nack]
//	OpStreamCredit     (14) [8B LE cid][uvarint n]
//
// An event is encoded as [uvarint-len source][uvarint nattrs]
// [nattrs × (uvarint-len key, uvarint-len value)][uvarint-len payload]
// [8B LE unix-nanos published] where published 0 means unset.
//
// # Session
//
// The client opens a TCP connection and sends a hello; the server
// answers with its own hello carrying its node ID, which the client may
// verify against an expected identity (the same guard the cluster
// prober applies to /healthz). After the handshake the client pipelines
// publish frames without waiting for acks; the server reads frames,
// coalesces whatever is already buffered into one PublishBatch call
// against the deployment, and acks every frame with its exact delivered
// count (via reef.BatchCountPublisher when the deployment offers it).
// Acks may arrive out of order with respect to nothing — the server
// acks in frame order — but the client matches them by sequence number
// regardless.
//
// # Consume
//
// The same connection carries the read side. A subscribe frame attaches
// a consumer for one (user, subscription) with an initial credit window
// (answered by an ack frame matched on its sequence number); the server
// then pushes deliver frames the moment events are retained — woken by
// the delivery queue's notify hook, not by polling — decrementing
// credit per pushed event and stopping at zero. The client replenishes
// credit with fire-and-forget credit frames as its application consumes,
// and advances the durable cursor with consume-ack frames that pipeline
// like publishes: cumulative, matched by sequence number, never blocking
// the push direction.
//
// # Drain
//
// Server.Shutdown stops accepting new connections and new frames, then
// applies and acks every frame already read before closing each
// connection. The invariant: a frame the server read is fully applied
// and acked; bytes still in flight are never partially applied. Pushed
// deliveries need no drain step: an unacked delivery is redelivered
// after its lease, on this node or on a promoted replica.
package reefstream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"reef"
	"reef/internal/durable"
	"reef/internal/trace"
)

// ProtoVersion is the handshake protocol version. A server rejects a
// hello with a version it does not speak.
const ProtoVersion = 1

// MaxFrameEvents bounds the events one publish frame may carry; larger
// batches are split by the client. It keeps a single frame's decode
// allocation and the server's coalescing buffer bounded.
const MaxFrameEvents = 4096

// Ack status bytes. The numeric values are part of the wire format.
const (
	StatusOK              = 0
	StatusInvalidArgument = 1
	StatusUnavailable     = 2
	StatusInternal        = 3
	StatusUnsupported     = 4
	StatusNotFound        = 5
)

// ErrBadFrame marks a structurally invalid stream payload: the durable
// frame decoded (length and CRC were fine) but the op-specific payload
// inside it is malformed. Like the durable codec's errors it is a
// typed, terminal decode verdict — never a panic.
var ErrBadFrame = errors.New("reefstream: malformed frame payload")

// StatusError is a non-OK ack surfaced to the publisher. It unwraps to
// the matching reef sentinel so callers keep their errors.Is checks.
type StatusError struct {
	Status  int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("reefstream: rejected (status %d): %s", e.Status, e.Message)
}

// Unwrap maps wire statuses onto the reef sentinels: invalid_argument
// unwraps to reef.ErrInvalidArgument, unavailable (server draining or
// closed) to reef.ErrClosed, unsupported (no reliable-delivery surface
// behind the stream) to reef.ErrUnsupported, not_found (unknown
// subscription) to reef.ErrNotFound.
func (e *StatusError) Unwrap() error {
	switch e.Status {
	case StatusInvalidArgument:
		return reef.ErrInvalidArgument
	case StatusUnavailable:
		return reef.ErrClosed
	case StatusUnsupported:
		return reef.ErrUnsupported
	case StatusNotFound:
		return reef.ErrNotFound
	}
	return nil
}

// statusFor classifies a deployment error into a wire status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, reef.ErrInvalidArgument):
		return StatusInvalidArgument
	case errors.Is(err, reef.ErrClosed):
		return StatusUnavailable
	case errors.Is(err, reef.ErrUnsupported):
		return StatusUnsupported
	case errors.Is(err, reef.ErrNotFound):
		return StatusNotFound
	default:
		return StatusInternal
	}
}

// hello is the JSON handshake payload. The client sends {Proto}; the
// server answers {Proto, Node}.
type hello struct {
	Proto int    `json:"proto"`
	Node  string `json:"node,omitempty"`
}

// AppendEvent appends one encoded event to dst. Attribute order is not
// canonicalized: encode→decode round-trips the event, but two equal
// events may encode differently. That is fine — frames are transport,
// not identity.
func AppendEvent(dst []byte, ev reef.Event) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ev.Source)))
	dst = append(dst, ev.Source...)
	dst = binary.AppendUvarint(dst, uint64(len(ev.Attrs)))
	for k, v := range ev.Attrs {
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
	}
	dst = binary.AppendUvarint(dst, uint64(len(ev.Payload)))
	dst = append(dst, ev.Payload...)
	var nanos uint64
	if !ev.Published.IsZero() {
		nanos = uint64(ev.Published.UnixNano())
	}
	return binary.LittleEndian.AppendUint64(dst, nanos)
}

// EncodeEvents encodes a batch into the seq-less body of a publish
// frame: [uvarint n][n × event]. The cluster router calls this once and
// ships the same payload to every node (each node's client prepends its
// own sequence number), so fan-out pays the encode cost once.
func EncodeEvents(evs []reef.Event) []byte {
	return AppendEvents(nil, evs)
}

// AppendEvents appends the EncodeEvents body to dst, for callers that
// reuse an encode buffer across publishes.
func AppendEvents(dst []byte, evs []reef.Event) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(evs)))
	for _, ev := range evs {
		dst = AppendEvent(dst, ev)
	}
	return dst
}

func decodeUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrBadFrame)
	}
	return v, buf[n:], nil
}

func decodeBytes(buf []byte) ([]byte, []byte, error) {
	n, rest, err := decodeUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("%w: length %d exceeds remaining %d", ErrBadFrame, n, len(rest))
	}
	return rest[:n], rest[n:], nil
}

// decodeEvent decodes one event from the front of buf. shared is the
// string conversion of the same byte region buf is a suffix of: every
// decoded string is sliced out of it, so a frame pays one string
// allocation instead of one per field (frames decode zero-copy from a
// reused read buffer, so the event must not alias buf itself).
func decodeEvent(buf []byte, shared string) (reef.Event, []byte, error) {
	// view maps a field slice (cut from the same backing array) to its
	// window of shared: f ends where rest begins.
	view := func(f, rest []byte) string {
		end := len(shared) - len(rest)
		return shared[end-len(f) : end]
	}
	var ev reef.Event
	src, rest, err := decodeBytes(buf)
	if err != nil {
		return ev, nil, err
	}
	if len(src) > 0 {
		ev.Source = view(src, rest)
	}
	nattrs, rest, err := decodeUvarint(rest)
	if err != nil {
		return ev, nil, err
	}
	// Each attribute costs at least two length bytes; anything claiming
	// more attributes than remaining bytes is garbage, not a big event.
	if nattrs > uint64(len(rest)) {
		return ev, nil, fmt.Errorf("%w: %d attrs in %d bytes", ErrBadFrame, nattrs, len(rest))
	}
	if nattrs > 0 {
		ev.Attrs = make(map[string]string, nattrs)
	}
	for i := uint64(0); i < nattrs; i++ {
		var k, v []byte
		if k, rest, err = decodeBytes(rest); err != nil {
			return ev, nil, err
		}
		kv := view(k, rest)
		if v, rest, err = decodeBytes(rest); err != nil {
			return ev, nil, err
		}
		ev.Attrs[kv] = view(v, rest)
	}
	payload, rest, err := decodeBytes(rest)
	if err != nil {
		return ev, nil, err
	}
	if len(payload) > 0 {
		ev.Payload = append([]byte(nil), payload...)
	}
	if len(rest) < 8 {
		return ev, nil, fmt.Errorf("%w: truncated publish timestamp", ErrBadFrame)
	}
	if nanos := binary.LittleEndian.Uint64(rest[:8]); nanos != 0 {
		ev.Published = time.Unix(0, int64(nanos)).UTC()
	}
	return ev, rest[8:], nil
}

// decodePublish decodes an OpStreamPublish payload into its sequence
// number, optional trace ID and events. evs is appended to and
// returned, so the caller can reuse a scratch slice across frames.
// After the events the payload may carry exactly one trailing field: a
// 16-byte trace ID stitching the publish into a cross-node trace. An
// empty tail means "untraced" (the pre-trace wire shape, still what
// untraced publishers send); any other tail length is malformed.
func decodePublish(payload []byte, evs []reef.Event) (uint64, trace.ID, []reef.Event, error) {
	var tr trace.ID
	if len(payload) < 8 {
		return 0, tr, nil, fmt.Errorf("%w: truncated publish header", ErrBadFrame)
	}
	seq := binary.LittleEndian.Uint64(payload[:8])
	n, rest, err := decodeUvarint(payload[8:])
	if err != nil {
		return 0, tr, nil, err
	}
	if n > MaxFrameEvents || n > uint64(len(rest)) {
		return 0, tr, nil, fmt.Errorf("%w: %d events in %d bytes", ErrBadFrame, n, len(rest))
	}
	// One copy of the whole event region up front; decodeEvent slices
	// every string out of it instead of copying field by field.
	shared := string(rest)
	for i := uint64(0); i < n; i++ {
		var ev reef.Event
		if ev, rest, err = decodeEvent(rest, shared); err != nil {
			return 0, tr, nil, err
		}
		evs = append(evs, ev)
	}
	switch len(rest) {
	case 0:
	case trace.IDLen:
		copy(tr[:], rest)
	default:
		return 0, tr, nil, fmt.Errorf("%w: %d trailing bytes after events", ErrBadFrame, len(rest))
	}
	return seq, tr, evs, nil
}

// appendPublishFrame frames seq + an EncodeEvents payload (+ the
// optional trailing trace ID) as one OpStreamPublish record appended to
// dst, without materializing the joined body. The payload slice is
// never appended into — a cluster fan-out ships the same encoded body
// to every node, so writing the trace into its spare capacity would
// race across connections.
func appendPublishFrame(dst []byte, seq uint64, payload []byte, tr trace.ID) []byte {
	var seqBuf [8]byte
	binary.LittleEndian.PutUint64(seqBuf[:], seq)
	if tr.IsZero() {
		return durable.AppendFrameParts(dst, durable.OpStreamPublish, seqBuf[:], payload)
	}
	return durable.AppendFrameParts3(dst, durable.OpStreamPublish, seqBuf[:], payload, tr[:])
}

// ack is a decoded OpStreamAck. connDead is never on the wire: it is
// the in-process verdict markDead delivers to pending waiters so their
// channels can be pooled instead of closed.
type ack struct {
	Seq       uint64
	Delivered uint64
	Status    int
	Message   string
	connDead  bool
}

func appendAckFrame(dst []byte, a ack) []byte {
	var fixed [17 + binary.MaxVarintLen64]byte
	binary.LittleEndian.PutUint64(fixed[0:8], a.Seq)
	binary.LittleEndian.PutUint64(fixed[8:16], a.Delivered)
	fixed[16] = byte(a.Status)
	n := 17 + binary.PutUvarint(fixed[17:], uint64(len(a.Message)))
	return durable.AppendFrameParts(dst, durable.OpStreamAck, fixed[:n], []byte(a.Message))
}

func decodeAck(payload []byte) (ack, error) {
	if len(payload) < 17 {
		return ack{}, fmt.Errorf("%w: truncated ack", ErrBadFrame)
	}
	a := ack{
		Seq:       binary.LittleEndian.Uint64(payload[0:8]),
		Delivered: binary.LittleEndian.Uint64(payload[8:16]),
		Status:    int(payload[16]),
	}
	msg, rest, err := decodeBytes(payload[17:])
	if err != nil {
		return ack{}, err
	}
	if len(rest) != 0 {
		return ack{}, fmt.Errorf("%w: %d trailing bytes after ack", ErrBadFrame, len(rest))
	}
	a.Message = string(msg)
	return a, nil
}

// ---- Consume-plane codecs ---------------------------------------------

// subscribe is a decoded OpStreamSubscribe: one consumer attach. Seq is
// the frame's place in the shared pipelined sequence space (its ack
// carries the server's verdict); CID is the connection-local consumer
// identity every later deliver/consume-ack/credit frame refers to.
type subscribe struct {
	Seq    uint64
	CID    uint64
	Credit uint64
	User   string
	SubID  string
}

func appendSubscribeFrame(dst []byte, s subscribe) []byte {
	var fixed [16 + binary.MaxVarintLen64]byte
	binary.LittleEndian.PutUint64(fixed[0:8], s.Seq)
	binary.LittleEndian.PutUint64(fixed[8:16], s.CID)
	n := 16 + binary.PutUvarint(fixed[16:], s.Credit)
	body := make([]byte, 0, 2*binary.MaxVarintLen64+len(s.User)+len(s.SubID))
	body = binary.AppendUvarint(body, uint64(len(s.User)))
	body = append(body, s.User...)
	body = binary.AppendUvarint(body, uint64(len(s.SubID)))
	body = append(body, s.SubID...)
	return durable.AppendFrameParts(dst, durable.OpStreamSubscribe, fixed[:n], body)
}

func decodeSubscribe(payload []byte) (subscribe, error) {
	if len(payload) < 16 {
		return subscribe{}, fmt.Errorf("%w: truncated subscribe", ErrBadFrame)
	}
	s := subscribe{
		Seq: binary.LittleEndian.Uint64(payload[0:8]),
		CID: binary.LittleEndian.Uint64(payload[8:16]),
	}
	credit, rest, err := decodeUvarint(payload[16:])
	if err != nil {
		return subscribe{}, err
	}
	s.Credit = credit
	user, rest, err := decodeBytes(rest)
	if err != nil {
		return subscribe{}, err
	}
	subID, rest, err := decodeBytes(rest)
	if err != nil {
		return subscribe{}, err
	}
	if len(rest) != 0 {
		return subscribe{}, fmt.Errorf("%w: %d trailing bytes after subscribe", ErrBadFrame, len(rest))
	}
	s.User, s.SubID = string(user), string(subID)
	return s, nil
}

// appendDeliverFrame frames one pushed batch for a consumer: the CID,
// then each leased event as [8B LE seq][uvarint attempts][event]. The
// caller passes reef-level delivered events; encode allocates nothing
// beyond dst's growth.
var deliverBodyPool = sync.Pool{New: func() any { return new([]byte) }}

func appendDeliverFrame(dst []byte, cid uint64, evs []reef.DeliveredEvent) []byte {
	bp := deliverBodyPool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = binary.LittleEndian.AppendUint64(buf, cid)
	buf = binary.AppendUvarint(buf, uint64(len(evs)))
	for _, d := range evs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(d.Seq))
		buf = binary.AppendUvarint(buf, uint64(d.Attempts))
		buf = AppendEvent(buf, d.Event)
	}
	dst = durable.AppendFrameParts(dst, durable.OpStreamDeliver, buf, nil)
	*bp = buf
	deliverBodyPool.Put(bp)
	return dst
}

// decodeDeliver decodes an OpStreamDeliver payload into its consumer ID
// and events, appending to evs (reusable across frames). Strings share
// one allocation via the same shared-string technique decodePublish
// uses, so a pushed frame costs one string copy, not one per field.
func decodeDeliver(payload []byte, evs []reef.DeliveredEvent) (uint64, []reef.DeliveredEvent, error) {
	if len(payload) < 8 {
		return 0, nil, fmt.Errorf("%w: truncated deliver header", ErrBadFrame)
	}
	cid := binary.LittleEndian.Uint64(payload[:8])
	n, rest, err := decodeUvarint(payload[8:])
	if err != nil {
		return 0, nil, err
	}
	if n > MaxFrameEvents || n > uint64(len(rest)) {
		return 0, nil, fmt.Errorf("%w: %d deliveries in %d bytes", ErrBadFrame, n, len(rest))
	}
	shared := string(rest)
	for i := uint64(0); i < n; i++ {
		if len(rest) < 8 {
			return 0, nil, fmt.Errorf("%w: truncated delivery seq", ErrBadFrame)
		}
		seq := binary.LittleEndian.Uint64(rest[:8])
		rest = rest[8:]
		attempts, r2, err := decodeUvarint(rest)
		if err != nil {
			return 0, nil, err
		}
		rest = r2
		var ev reef.Event
		// Re-anchor shared to the remaining window so decodeEvent's
		// offset math (computed against the suffix it was handed) holds.
		if ev, rest, err = decodeEvent(rest, shared[len(shared)-len(rest):]); err != nil {
			return 0, nil, err
		}
		evs = append(evs, reef.DeliveredEvent{Seq: int64(seq), Attempts: int(attempts), Event: ev})
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes after deliveries", ErrBadFrame, len(rest))
	}
	return cid, evs, nil
}

// consumeAck is a decoded OpStreamConsumeAck: one cumulative cursor
// advance (or nack) pipelined from a consumer. Fixed 25-byte payload.
type consumeAck struct {
	Seq    uint64
	CID    uint64
	AckSeq int64
	Nack   bool
}

func appendConsumeAckFrame(dst []byte, a consumeAck) []byte {
	var fixed [25]byte
	binary.LittleEndian.PutUint64(fixed[0:8], a.Seq)
	binary.LittleEndian.PutUint64(fixed[8:16], a.CID)
	binary.LittleEndian.PutUint64(fixed[16:24], uint64(a.AckSeq))
	if a.Nack {
		fixed[24] = 1
	}
	return durable.AppendFrameParts(dst, durable.OpStreamConsumeAck, fixed[:], nil)
}

func decodeConsumeAck(payload []byte) (consumeAck, error) {
	if len(payload) != 25 {
		return consumeAck{}, fmt.Errorf("%w: consume-ack length %d, want 25", ErrBadFrame, len(payload))
	}
	if payload[24] > 1 {
		return consumeAck{}, fmt.Errorf("%w: consume-ack nack byte %d", ErrBadFrame, payload[24])
	}
	return consumeAck{
		Seq:    binary.LittleEndian.Uint64(payload[0:8]),
		CID:    binary.LittleEndian.Uint64(payload[8:16]),
		AckSeq: int64(binary.LittleEndian.Uint64(payload[16:24])),
		Nack:   payload[24] == 1,
	}, nil
}

// credit is a decoded OpStreamCredit: a fire-and-forget flow-control
// grant of n more events for one consumer.
type credit struct {
	CID uint64
	N   uint64
}

func appendCreditFrame(dst []byte, c credit) []byte {
	var fixed [8 + binary.MaxVarintLen64]byte
	binary.LittleEndian.PutUint64(fixed[0:8], c.CID)
	n := 8 + binary.PutUvarint(fixed[8:], c.N)
	return durable.AppendFrameParts(dst, durable.OpStreamCredit, fixed[:n], nil)
}

func decodeCredit(payload []byte) (credit, error) {
	if len(payload) < 8 {
		return credit{}, fmt.Errorf("%w: truncated credit", ErrBadFrame)
	}
	c := credit{CID: binary.LittleEndian.Uint64(payload[0:8])}
	n, rest, err := decodeUvarint(payload[8:])
	if err != nil {
		return credit{}, err
	}
	if len(rest) != 0 {
		return credit{}, fmt.Errorf("%w: %d trailing bytes after credit", ErrBadFrame, len(rest))
	}
	c.N = n
	return c, nil
}
