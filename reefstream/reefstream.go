// Package reefstream is the binary publish data plane: a persistent-
// connection, length-prefixed streaming protocol that carries events to
// a reef deployment without the per-call HTTP/1.1 + JSON envelope the
// REST transport pays. REST (reefclient) remains the control plane —
// subscriptions, recommendations, stats — while this package moves the
// one hot, high-volume verb: publish.
//
// # Wire format
//
// Every message on the wire is one internal/durable record frame
// ([4B body length][4B CRC32-C][1B version][1B op][payload]), so the
// ingest wire format and the WAL/replication format are a single codec
// with a single fuzzer. Three ops exist only on the wire and never in a
// WAL file:
//
//	OpStreamHello   (8)  JSON handshake, both directions
//	OpStreamPublish (9)  [8B LE seq][uvarint n][n × event]
//	OpStreamAck     (10) [8B LE seq][8B LE delivered][1B status][uvarint-len message]
//
// An event is encoded as [uvarint-len source][uvarint nattrs]
// [nattrs × (uvarint-len key, uvarint-len value)][uvarint-len payload]
// [8B LE unix-nanos published] where published 0 means unset.
//
// # Session
//
// The client opens a TCP connection and sends a hello; the server
// answers with its own hello carrying its node ID, which the client may
// verify against an expected identity (the same guard the cluster
// prober applies to /healthz). After the handshake the client pipelines
// publish frames without waiting for acks; the server reads frames,
// coalesces whatever is already buffered into one PublishBatch call
// against the deployment, and acks every frame with its exact delivered
// count (via reef.BatchCountPublisher when the deployment offers it).
// Acks may arrive out of order with respect to nothing — the server
// acks in frame order — but the client matches them by sequence number
// regardless.
//
// # Drain
//
// Server.Shutdown stops accepting new connections and new frames, then
// applies and acks every frame already read before closing each
// connection. The invariant: a frame the server read is fully applied
// and acked; bytes still in flight are never partially applied.
package reefstream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"reef"
	"reef/internal/durable"
)

// ProtoVersion is the handshake protocol version. A server rejects a
// hello with a version it does not speak.
const ProtoVersion = 1

// MaxFrameEvents bounds the events one publish frame may carry; larger
// batches are split by the client. It keeps a single frame's decode
// allocation and the server's coalescing buffer bounded.
const MaxFrameEvents = 4096

// Ack status bytes. The numeric values are part of the wire format.
const (
	StatusOK              = 0
	StatusInvalidArgument = 1
	StatusUnavailable     = 2
	StatusInternal        = 3
)

// ErrBadFrame marks a structurally invalid stream payload: the durable
// frame decoded (length and CRC were fine) but the op-specific payload
// inside it is malformed. Like the durable codec's errors it is a
// typed, terminal decode verdict — never a panic.
var ErrBadFrame = errors.New("reefstream: malformed frame payload")

// StatusError is a non-OK ack surfaced to the publisher. It unwraps to
// the matching reef sentinel so callers keep their errors.Is checks.
type StatusError struct {
	Status  int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("reefstream: publish rejected (status %d): %s", e.Status, e.Message)
}

// Unwrap maps wire statuses onto the reef sentinels: invalid_argument
// publishes unwrap to reef.ErrInvalidArgument, unavailable (server
// draining or closed) to reef.ErrClosed.
func (e *StatusError) Unwrap() error {
	switch e.Status {
	case StatusInvalidArgument:
		return reef.ErrInvalidArgument
	case StatusUnavailable:
		return reef.ErrClosed
	}
	return nil
}

// statusFor classifies a deployment error into a wire status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, reef.ErrInvalidArgument):
		return StatusInvalidArgument
	case errors.Is(err, reef.ErrClosed):
		return StatusUnavailable
	default:
		return StatusInternal
	}
}

// hello is the JSON handshake payload. The client sends {Proto}; the
// server answers {Proto, Node}.
type hello struct {
	Proto int    `json:"proto"`
	Node  string `json:"node,omitempty"`
}

// AppendEvent appends one encoded event to dst. Attribute order is not
// canonicalized: encode→decode round-trips the event, but two equal
// events may encode differently. That is fine — frames are transport,
// not identity.
func AppendEvent(dst []byte, ev reef.Event) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ev.Source)))
	dst = append(dst, ev.Source...)
	dst = binary.AppendUvarint(dst, uint64(len(ev.Attrs)))
	for k, v := range ev.Attrs {
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
	}
	dst = binary.AppendUvarint(dst, uint64(len(ev.Payload)))
	dst = append(dst, ev.Payload...)
	var nanos uint64
	if !ev.Published.IsZero() {
		nanos = uint64(ev.Published.UnixNano())
	}
	return binary.LittleEndian.AppendUint64(dst, nanos)
}

// EncodeEvents encodes a batch into the seq-less body of a publish
// frame: [uvarint n][n × event]. The cluster router calls this once and
// ships the same payload to every node (each node's client prepends its
// own sequence number), so fan-out pays the encode cost once.
func EncodeEvents(evs []reef.Event) []byte {
	return AppendEvents(nil, evs)
}

// AppendEvents appends the EncodeEvents body to dst, for callers that
// reuse an encode buffer across publishes.
func AppendEvents(dst []byte, evs []reef.Event) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(evs)))
	for _, ev := range evs {
		dst = AppendEvent(dst, ev)
	}
	return dst
}

func decodeUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrBadFrame)
	}
	return v, buf[n:], nil
}

func decodeBytes(buf []byte) ([]byte, []byte, error) {
	n, rest, err := decodeUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("%w: length %d exceeds remaining %d", ErrBadFrame, n, len(rest))
	}
	return rest[:n], rest[n:], nil
}

// decodeEvent decodes one event from the front of buf. shared is the
// string conversion of the same byte region buf is a suffix of: every
// decoded string is sliced out of it, so a frame pays one string
// allocation instead of one per field (frames decode zero-copy from a
// reused read buffer, so the event must not alias buf itself).
func decodeEvent(buf []byte, shared string) (reef.Event, []byte, error) {
	// view maps a field slice (cut from the same backing array) to its
	// window of shared: f ends where rest begins.
	view := func(f, rest []byte) string {
		end := len(shared) - len(rest)
		return shared[end-len(f) : end]
	}
	var ev reef.Event
	src, rest, err := decodeBytes(buf)
	if err != nil {
		return ev, nil, err
	}
	if len(src) > 0 {
		ev.Source = view(src, rest)
	}
	nattrs, rest, err := decodeUvarint(rest)
	if err != nil {
		return ev, nil, err
	}
	// Each attribute costs at least two length bytes; anything claiming
	// more attributes than remaining bytes is garbage, not a big event.
	if nattrs > uint64(len(rest)) {
		return ev, nil, fmt.Errorf("%w: %d attrs in %d bytes", ErrBadFrame, nattrs, len(rest))
	}
	if nattrs > 0 {
		ev.Attrs = make(map[string]string, nattrs)
	}
	for i := uint64(0); i < nattrs; i++ {
		var k, v []byte
		if k, rest, err = decodeBytes(rest); err != nil {
			return ev, nil, err
		}
		kv := view(k, rest)
		if v, rest, err = decodeBytes(rest); err != nil {
			return ev, nil, err
		}
		ev.Attrs[kv] = view(v, rest)
	}
	payload, rest, err := decodeBytes(rest)
	if err != nil {
		return ev, nil, err
	}
	if len(payload) > 0 {
		ev.Payload = append([]byte(nil), payload...)
	}
	if len(rest) < 8 {
		return ev, nil, fmt.Errorf("%w: truncated publish timestamp", ErrBadFrame)
	}
	if nanos := binary.LittleEndian.Uint64(rest[:8]); nanos != 0 {
		ev.Published = time.Unix(0, int64(nanos)).UTC()
	}
	return ev, rest[8:], nil
}

// decodePublish decodes an OpStreamPublish payload into its sequence
// number and events. evs is appended to and returned, so the caller can
// reuse a scratch slice across frames.
func decodePublish(payload []byte, evs []reef.Event) (uint64, []reef.Event, error) {
	if len(payload) < 8 {
		return 0, nil, fmt.Errorf("%w: truncated publish header", ErrBadFrame)
	}
	seq := binary.LittleEndian.Uint64(payload[:8])
	n, rest, err := decodeUvarint(payload[8:])
	if err != nil {
		return 0, nil, err
	}
	if n > MaxFrameEvents || n > uint64(len(rest)) {
		return 0, nil, fmt.Errorf("%w: %d events in %d bytes", ErrBadFrame, n, len(rest))
	}
	// One copy of the whole event region up front; decodeEvent slices
	// every string out of it instead of copying field by field.
	shared := string(rest)
	for i := uint64(0); i < n; i++ {
		var ev reef.Event
		if ev, rest, err = decodeEvent(rest, shared); err != nil {
			return 0, nil, err
		}
		evs = append(evs, ev)
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes after events", ErrBadFrame, len(rest))
	}
	return seq, evs, nil
}

// appendPublishFrame frames seq + an EncodeEvents payload as one
// OpStreamPublish record appended to dst, without materializing the
// joined body.
func appendPublishFrame(dst []byte, seq uint64, payload []byte) []byte {
	var seqBuf [8]byte
	binary.LittleEndian.PutUint64(seqBuf[:], seq)
	return durable.AppendFrameParts(dst, durable.OpStreamPublish, seqBuf[:], payload)
}

// ack is a decoded OpStreamAck. connDead is never on the wire: it is
// the in-process verdict markDead delivers to pending waiters so their
// channels can be pooled instead of closed.
type ack struct {
	Seq       uint64
	Delivered uint64
	Status    int
	Message   string
	connDead  bool
}

func appendAckFrame(dst []byte, a ack) []byte {
	var fixed [17 + binary.MaxVarintLen64]byte
	binary.LittleEndian.PutUint64(fixed[0:8], a.Seq)
	binary.LittleEndian.PutUint64(fixed[8:16], a.Delivered)
	fixed[16] = byte(a.Status)
	n := 17 + binary.PutUvarint(fixed[17:], uint64(len(a.Message)))
	return durable.AppendFrameParts(dst, durable.OpStreamAck, fixed[:n], []byte(a.Message))
}

func decodeAck(payload []byte) (ack, error) {
	if len(payload) < 17 {
		return ack{}, fmt.Errorf("%w: truncated ack", ErrBadFrame)
	}
	a := ack{
		Seq:       binary.LittleEndian.Uint64(payload[0:8]),
		Delivered: binary.LittleEndian.Uint64(payload[8:16]),
		Status:    int(payload[16]),
	}
	msg, rest, err := decodeBytes(payload[17:])
	if err != nil {
		return ack{}, err
	}
	if len(rest) != 0 {
		return ack{}, fmt.Errorf("%w: %d trailing bytes after ack", ErrBadFrame, len(rest))
	}
	a.Message = string(msg)
	return a, nil
}
