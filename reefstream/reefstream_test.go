package reefstream_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"reef"
	"reef/internal/websim"
	"reef/reefstream"
)

type nopFetcher struct{}

func (nopFetcher) Fetch(url string) (*websim.Resource, error) {
	return nil, fmt.Errorf("test: %s not cached", url)
}

// newDep builds a deployment with n subscribers of feed, so a matching
// publish delivers exactly n times.
func newDep(t *testing.T, feed string, n int, opts ...reef.Option) *reef.Centralized {
	t.Helper()
	dep, err := reef.NewCentralized(append([]reef.Option{reef.WithFetcher(nopFetcher{})}, opts...)...)
	if err != nil {
		t.Fatalf("NewCentralized: %v", err)
	}
	t.Cleanup(func() { dep.Close() })
	ctx := context.Background()
	for i := 0; i < n; i++ {
		if _, err := dep.Subscribe(ctx, fmt.Sprintf("user-%03d", i), feed); err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
	}
	return dep
}

func feedEvent(feed string) reef.Event {
	return reef.Event{
		Source: "stream-test",
		Attrs:  map[string]string{"type": "feed-item", "feed": feed, "title": "t", "link": "http://h.test/item"},
	}
}

func TestStreamPublishDeliversLikeDirect(t *testing.T) {
	const feed = "http://h.test/f"
	dep := newDep(t, feed, 7)
	srv, err := reefstream.Listen("127.0.0.1:0", dep, reefstream.WithNode("n1"))
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	cl := reefstream.NewClient(srv.Addr().String(), reefstream.WithExpectNode("n1"))
	defer cl.Close()

	ctx := context.Background()
	want, err := dep.PublishEvent(ctx, feedEvent(feed))
	if err != nil {
		t.Fatalf("direct PublishEvent: %v", err)
	}
	if want != 7 {
		t.Fatalf("direct delivered = %d, want 7", want)
	}
	got, err := cl.PublishEvent(ctx, feedEvent(feed))
	if err != nil {
		t.Fatalf("stream PublishEvent: %v", err)
	}
	if got != want {
		t.Errorf("stream delivered = %d, direct = %d", got, want)
	}

	batch := make([]reef.Event, 5)
	for i := range batch {
		batch[i] = feedEvent(feed)
	}
	got, err = cl.PublishBatch(ctx, batch)
	if err != nil {
		t.Fatalf("stream PublishBatch: %v", err)
	}
	if got != 5*want {
		t.Errorf("batch delivered = %d, want %d", got, 5*want)
	}
	if frames, events := srv.Stats(); frames != 2 || events != 6 {
		t.Errorf("server stats = (%d frames, %d events), want (2, 6)", frames, events)
	}
}

// TestStreamEventRoundTrip pins that every event field survives the
// binary encoding, including a zero Published time staying zero.
func TestStreamEventRoundTrip(t *testing.T) {
	const feed = "http://h.test/f"
	dep := newDep(t, feed, 1)
	ctx := context.Background()
	srv, err := reefstream.Listen("127.0.0.1:0", dep)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	cl := reefstream.NewClient(srv.Addr().String())
	defer cl.Close()

	ev := feedEvent(feed)
	ev.Payload = []byte{0, 1, 2, 0xff}
	ev.Published = time.Unix(123, 456).UTC()
	if _, err := cl.PublishEvent(ctx, ev); err != nil {
		t.Fatalf("PublishEvent: %v", err)
	}
	// A second publish with a zero time must also deliver (the decoder
	// must map wire 0 back to the zero time so the broker stamps it).
	if _, err := cl.PublishEvent(ctx, feedEvent(feed)); err != nil {
		t.Fatalf("PublishEvent zero-time: %v", err)
	}
}

func TestStreamConcurrentPipelining(t *testing.T) {
	const feed = "http://h.test/f"
	const subs = 3
	dep := newDep(t, feed, subs, reef.WithQueueSize(4096))
	srv, err := reefstream.Listen("127.0.0.1:0", dep)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	cl := reefstream.NewClient(srv.Addr().String())
	defer cl.Close()

	ctx := context.Background()
	const workers, perWorker = 8, 50
	var delivered atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n, err := cl.PublishEvent(ctx, feedEvent(feed))
				if err != nil {
					t.Errorf("PublishEvent: %v", err)
					return
				}
				delivered.Add(int64(n))
			}
		}()
	}
	wg.Wait()
	if got, want := delivered.Load(), int64(workers*perWorker*subs); got != want {
		t.Errorf("total delivered = %d, want %d", got, want)
	}
	if frames, events := srv.Stats(); frames != workers*perWorker || events != workers*perWorker {
		t.Errorf("server stats = (%d frames, %d events), want (%d, %d)",
			frames, events, workers*perWorker, workers*perWorker)
	}
}

// TestStreamInvalidEventAck pins error attribution: an invalid event is
// rejected with a typed ack that unwraps to reef.ErrInvalidArgument,
// and a valid frame pipelined around it still lands.
func TestStreamInvalidEventAck(t *testing.T) {
	const feed = "http://h.test/f"
	dep := newDep(t, feed, 2)
	srv, err := reefstream.Listen("127.0.0.1:0", dep)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	cl := reefstream.NewClient(srv.Addr().String())
	defer cl.Close()

	ctx := context.Background()
	if _, err := cl.PublishEvent(ctx, reef.Event{}); !errors.Is(err, reef.ErrInvalidArgument) {
		t.Errorf("invalid event err = %v, want reef.ErrInvalidArgument", err)
	}
	var se *reefstream.StatusError
	if _, err := cl.PublishEvent(ctx, reef.Event{}); !errors.As(err, &se) || se.Status != reefstream.StatusInvalidArgument {
		t.Errorf("invalid event err = %v, want StatusError(invalid_argument)", err)
	}
	if n, err := cl.PublishEvent(ctx, feedEvent(feed)); err != nil || n != 2 {
		t.Errorf("valid publish after rejection = (%d, %v), want (2, nil)", n, err)
	}
}

func TestStreamNodeIdentityMismatch(t *testing.T) {
	dep := newDep(t, "http://h.test/f", 0)
	srv, err := reefstream.Listen("127.0.0.1:0", dep, reefstream.WithNode("n1"))
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	cl := reefstream.NewClient(srv.Addr().String(), reefstream.WithExpectNode("other"))
	defer cl.Close()
	if _, err := cl.PublishEvent(context.Background(), feedEvent("http://h.test/f")); err == nil {
		t.Fatal("publish to wrong node identity succeeded, want handshake refusal")
	}
}

// TestStreamClientRedials pins lazy recovery: after the server dies and
// a replacement comes up on the same address, the same client publishes
// again without being rebuilt.
func TestStreamClientRedials(t *testing.T) {
	const feed = "http://h.test/f"
	dep := newDep(t, feed, 1)
	srv, err := reefstream.Listen("127.0.0.1:0", dep)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	addr := srv.Addr().String()
	cl := reefstream.NewClient(addr)
	defer cl.Close()

	ctx := context.Background()
	if _, err := cl.PublishEvent(ctx, feedEvent(feed)); err != nil {
		t.Fatalf("first publish: %v", err)
	}
	srv.Close()

	// Rebind the same address; retry briefly in case the port lingers.
	var srv2 *reefstream.Server
	for i := 0; i < 50; i++ {
		ln, lerr := net.Listen("tcp", addr)
		if lerr == nil {
			srv2 = reefstream.NewServer(ln, dep)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if srv2 == nil {
		t.Fatalf("could not rebind %s", addr)
	}
	defer srv2.Close()

	var lastErr error
	for i := 0; i < 50; i++ {
		if _, lastErr = cl.PublishEvent(ctx, feedEvent(feed)); lastErr == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("publish never recovered after server restart: %v", lastErr)
}

func TestStreamClientClosed(t *testing.T) {
	dep := newDep(t, "http://h.test/f", 0)
	srv, err := reefstream.Listen("127.0.0.1:0", dep)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	cl := reefstream.NewClient(srv.Addr().String())
	cl.Close()
	if _, err := cl.PublishEvent(context.Background(), feedEvent("http://h.test/f")); !errors.Is(err, reef.ErrClosed) {
		t.Errorf("publish on closed client = %v, want reef.ErrClosed", err)
	}
}

// TestStreamServerDrainMidStream drives publishers through a drain and
// asserts the invariant the drain sequence promises: every frame the
// server read is applied whole. Each frame carries batchSize events, so
// the deployment's published counter must advance in exact multiples of
// batchSize — a half-applied frame would break divisibility — and every
// client-acked event must be among the applied ones.
func TestStreamServerDrainMidStream(t *testing.T) {
	const feed = "http://h.test/f"
	const batchSize = 7
	dep := newDep(t, feed, 1, reef.WithQueueSize(65536))
	srv, err := reefstream.Listen("127.0.0.1:0", dep)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	cl := reefstream.NewClient(srv.Addr().String())
	defer cl.Close()

	ctx := context.Background()
	before, err := dep.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}

	var ackedFrames atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := make([]reef.Event, batchSize)
			for i := range batch {
				batch[i] = feedEvent(feed)
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := cl.PublishBatch(ctx, batch); err == nil {
					ackedFrames.Add(1)
				}
			}
		}()
	}

	time.Sleep(50 * time.Millisecond) // let the stream get hot
	shutdownCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	close(stop)
	wg.Wait()

	after, err := dep.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	applied := int64(after["broker_published"] - before["broker_published"])
	if applied%batchSize != 0 {
		t.Errorf("deployment applied %d events, not a multiple of frame size %d: a frame was half-applied", applied, batchSize)
	}
	if acked := ackedFrames.Load() * batchSize; applied < acked {
		t.Errorf("deployment applied %d events but clients got acks for %d", applied, acked)
	}
	if ackedFrames.Load() == 0 {
		t.Error("no frame was acked before the drain; test exercised nothing")
	}
	_, events := srv.Stats()
	if events%batchSize != 0 {
		t.Errorf("server applied %d events, not a multiple of %d", events, batchSize)
	}
}

// TestStreamServerDrainRefusesNewConns pins that a draining server
// stops accepting: a fresh client cannot publish after Shutdown.
func TestStreamServerDrainRefusesNewConns(t *testing.T) {
	dep := newDep(t, "http://h.test/f", 0)
	srv, err := reefstream.Listen("127.0.0.1:0", dep)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	cl := reefstream.NewClient(srv.Addr().String(), reefstream.WithCallTimeout(500*time.Millisecond))
	defer cl.Close()
	if _, err := cl.PublishEvent(ctx, feedEvent("http://h.test/f")); err == nil {
		t.Fatal("publish to a drained server succeeded")
	}
}
