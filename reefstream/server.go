package reefstream

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"reef"
	"reef/internal/durable"
	"reef/internal/metrics"
	"reef/internal/trace"
)

// handshakeTimeout bounds how long a fresh connection may sit between
// accept and a completed hello before the server drops it.
const handshakeTimeout = 10 * time.Second

// maxCoalesceEvents bounds how many events one server-side coalescing
// pass may gather across pipelined frames before applying them as a
// single batch publish.
const maxCoalesceEvents = 16384

// ServerOption configures a stream server.
type ServerOption func(*Server)

// WithNode sets the node identity the server reports in its handshake
// hello, letting clients verify they reached the node they dialed (the
// same identity guard the cluster prober applies to /healthz).
func WithNode(id string) ServerOption {
	return func(s *Server) { s.node = id }
}

// WithMetrics reports the server's instrumentation (connection gauge,
// frame/event counters, coalesced-batch histogram) into a shared
// registry — reefd passes its REST handler's registry so one
// /v1/metrics scrape covers both planes. Without it the server uses a
// private registry.
func WithMetrics(r *metrics.Registry) ServerOption {
	return func(s *Server) { s.metrics = r }
}

// WithTraceRecorder records a span per traced publish frame into the
// given ring (shared with the node's REST handler, so /v1/admin/trace
// stitches both planes). Without it traced frames are applied but not
// recorded.
func WithTraceRecorder(r *trace.Recorder) ServerOption {
	return func(s *Server) { s.tracer = r }
}

// Server accepts stream connections and feeds decoded publish frames
// into a deployment. One goroutine per connection reads frames,
// coalesces whatever is already buffered into a single batch publish,
// and acks every frame with its exact delivered count.
type Server struct {
	dep    reef.Deployment
	counts reef.BatchCountPublisher // non-nil when dep attributes per-event counts
	stream reef.StreamDeliverer     // non-nil when dep can push reliable deliveries
	node   string
	ln     net.Listener

	metrics *metrics.Registry
	tracer  *trace.Recorder

	// Registry-backed instrumentation, resolved once in NewServer so
	// the hot paths never take the registry lock.
	mConns     *metrics.Gauge
	mFramesIn  *metrics.Counter
	mFramesOut *metrics.Counter
	mEventsIn  *metrics.Counter
	mBatch     *metrics.Histogram
	mConsumers *metrics.Gauge
	mDelivered *metrics.Counter

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	draining bool
	closed   bool

	acceptDone chan struct{}
	handlers   sync.WaitGroup
}

// Listen starts a stream server on addr (e.g. "127.0.0.1:0") serving
// the deployment. The listener is accepting when Listen returns.
func Listen(addr string, dep reef.Deployment, opts ...ServerOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("reefstream: listen %s: %w", addr, err)
	}
	return NewServer(ln, dep, opts...), nil
}

// NewServer serves stream connections from an existing listener. The
// server owns the listener and closes it on Shutdown/Close.
func NewServer(ln net.Listener, dep reef.Deployment, opts ...ServerOption) *Server {
	s := &Server{
		dep:        dep,
		ln:         ln,
		conns:      make(map[net.Conn]struct{}),
		acceptDone: make(chan struct{}),
	}
	if bc, ok := dep.(reef.BatchCountPublisher); ok {
		s.counts = bc
	}
	if sd, ok := dep.(reef.StreamDeliverer); ok {
		s.stream = sd
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.metrics == nil {
		s.metrics = metrics.NewRegistry()
	}
	s.mConns = s.metrics.Gauge(metrics.StreamConns.Name)
	s.mFramesIn = s.metrics.Counter(metrics.StreamFramesIn.Name)
	s.mFramesOut = s.metrics.Counter(metrics.StreamFramesOut.Name)
	s.mEventsIn = s.metrics.Counter(metrics.StreamEventsIn.Name)
	s.mBatch = s.metrics.Histogram(metrics.StreamBatchEvents.Name)
	s.mConsumers = s.metrics.Gauge(metrics.StreamConsumers.Name)
	s.mDelivered = s.metrics.Counter(metrics.StreamDelivered.Name)
	go s.acceptLoop()
	return s
}

// Addr reports the listener address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Stats reports how many publish frames and events this server has
// applied since start. The counts are views over the server's registry
// metrics (reef_stream_frames_in_total / reef_stream_events_in_total),
// so this legacy accessor and the /v1/metrics exposition can never
// disagree.
func (s *Server) Stats() (frames, events int64) {
	return s.mFramesIn.Value(), s.mEventsIn.Value()
}

// ConsumeStats reports the consume side of the data plane: how many
// consumer sessions are attached right now, and how many events have
// been pushed to consumers since start (redeliveries included). Like
// Stats, the counts are views over the registry metrics.
func (s *Server) ConsumeStats() (attached, delivered int64) {
	return s.mConsumers.Value(), s.mDelivered.Value()
}

// Metrics returns the server's instrumentation registry.
func (s *Server) Metrics() *metrics.Registry { return s.metrics }

func (s *Server) acceptLoop() {
	defer close(s.acceptDone)
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown/Close
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.handlers.Add(1)
		s.mu.Unlock()
		s.mConns.Add(1)
		go func() {
			defer s.handlers.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			s.mConns.Add(-1)
		}()
	}
}

// Shutdown drains the server: stop accepting connections and frames,
// apply and ack every frame already read, flush, then close. It blocks
// until all connection handlers have finished or ctx expires; on expiry
// remaining connections are force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	if !alreadyDraining {
		s.ln.Close()
		// Kick handlers blocked in a read. Frames already buffered in
		// a handler's reader still decode fine; only the blocking wait
		// on the socket is interrupted.
		for conn := range s.conns {
			conn.SetReadDeadline(time.Now())
		}
	}
	s.mu.Unlock()
	<-s.acceptDone

	done := make(chan struct{})
	go func() {
		s.handlers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Close force-closes the server without waiting for in-flight frames.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.draining = true
	s.ln.Close()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	<-s.acceptDone
	s.handlers.Wait()
	return nil
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// frameSpan marks one publish frame's slice of the coalesced event
// batch, so its ack can report exactly its own deliveries; tr is the
// frame's trace ID (zero when untraced).
type frameSpan struct {
	seq        uint64
	start, end int
	tr         trace.ID
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 256<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)

	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	if err := s.handshake(br, bw); err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})

	// All further writes go through cs: consumer pushers share the
	// socket with the ack path, so the bufio writer is mutex-serialized
	// from here on.
	cs := newConnState(s, bw)
	defer cs.closeConsumers()

	var (
		readBuf []byte
		evs     []reef.Event
		spans   []frameSpan
		ackBuf  []byte
		counts  []int
	)
	for {
		evs, spans = evs[:0], spans[:0]
		var ctrl durable.Record
		hasCtrl := false
		// Block for one frame, then keep decoding as long as more
		// frames are already buffered — pipelined publishes coalesce
		// into one batch publish without adding latency to a lone one.
		// A consume-plane frame ends the pass (it is handled after the
		// publishes it trailed, preserving frame order).
		rec, err := s.readFrame(br, &readBuf)
		for {
			if err != nil {
				break
			}
			if rec.Op != durable.OpStreamPublish {
				ctrl, hasCtrl = rec, true
				break
			}
			var seq uint64
			var tr trace.ID
			start := len(evs)
			seq, tr, evs, err = decodePublish(rec.Payload, evs)
			if err != nil {
				break
			}
			spans = append(spans, frameSpan{seq: seq, start: start, end: len(evs), tr: tr})
			if br.Buffered() < durable.FrameHeaderLen || len(evs) >= maxCoalesceEvents {
				break
			}
			rec, err = s.readFrame(br, &readBuf)
		}
		// Apply and ack everything that was fully read, even when the
		// read that followed it failed (drain kick, peer gone, corrupt
		// frame): a frame the server read is never left half-applied.
		if len(spans) > 0 {
			ackBuf, counts = s.applyAndAck(evs, spans, ackBuf[:0], counts)
			if cs.write(ackBuf) != nil {
				return
			}
		}
		if hasCtrl {
			var cerr error
			ackBuf, cerr = s.handleControl(cs, ctrl, ackBuf[:0])
			if cerr != nil {
				return
			}
			if len(ackBuf) > 0 && cs.write(ackBuf) != nil {
				return
			}
		}
		if err != nil {
			return
		}
		if s.isDraining() && br.Buffered() < durable.FrameHeaderLen {
			return
		}
	}
}

// handleControl dispatches one consume-plane frame: subscribe and
// consume-ack get an ack frame appended to dst (matched by sequence
// number client-side), credit is fire-and-forget. A malformed payload
// or an op that has no business arriving from a client is a protocol
// error that kills the connection.
func (s *Server) handleControl(cs *connState, rec durable.Record, dst []byte) ([]byte, error) {
	switch rec.Op {
	case durable.OpStreamSubscribe:
		sub, err := decodeSubscribe(rec.Payload)
		if err != nil {
			return dst, err
		}
		a := ack{Seq: sub.Seq}
		if err := cs.attach(sub); err != nil {
			a.Status = statusFor(err)
			a.Message = err.Error()
		}
		return appendAckFrame(dst, a), nil
	case durable.OpStreamConsumeAck:
		ca, err := decodeConsumeAck(rec.Payload)
		if err != nil {
			return dst, err
		}
		a := ack{Seq: ca.Seq}
		if err := cs.consumeAck(ca); err != nil {
			a.Status = statusFor(err)
			a.Message = err.Error()
		}
		return appendAckFrame(dst, a), nil
	case durable.OpStreamCredit:
		cr, err := decodeCredit(rec.Payload)
		if err != nil {
			return dst, err
		}
		cs.addCredit(cr)
		return dst, nil
	default:
		return dst, fmt.Errorf("%w: unexpected op %v mid-stream", ErrBadFrame, rec.Op)
	}
}

// applyAndAck publishes the coalesced batch and appends one ack frame
// per span to dst. When the deployment attributes per-event delivery
// counts the whole batch goes down in one call; otherwise — or when the
// batch call fails and error attribution matters — each frame is
// published on its own. countScratch is the caller's reusable per-event
// count slice; it is returned (possibly regrown) for the next pass.
func (s *Server) applyAndAck(evs []reef.Event, spans []frameSpan, dst []byte, countScratch []int) ([]byte, []int) {
	ctx := context.Background()
	begin := time.Now()
	s.mBatch.Observe(float64(len(evs)))
	if s.counts != nil {
		if cap(countScratch) < len(evs) {
			countScratch = make([]int, len(evs))
		}
		counts := countScratch[:len(evs)]
		clear(counts)
		if _, err := s.counts.PublishBatchCounts(ctx, evs, counts); err == nil {
			s.mFramesIn.Add(int64(len(spans)))
			s.mEventsIn.Add(int64(len(evs)))
			s.mFramesOut.Add(int64(len(spans)))
			for _, sp := range spans {
				delivered := 0
				for _, c := range counts[sp.start:sp.end] {
					delivered += c
				}
				dst = appendAckFrame(dst, ack{Seq: sp.seq, Delivered: uint64(delivered)})
				s.recordPublishSpan(sp, begin, "")
			}
			return dst, countScratch
		}
		// Group publish failed: fall through and retry per frame so
		// each ack carries its own verdict, not the group's.
	}
	for _, sp := range spans {
		delivered, err := s.dep.PublishBatch(ctx, evs[sp.start:sp.end])
		a := ack{Seq: sp.seq, Delivered: uint64(delivered)}
		errStr := ""
		if err != nil {
			a.Status = statusFor(err)
			a.Message = err.Error()
			errStr = err.Error()
		} else {
			s.mFramesIn.Add(1)
			s.mEventsIn.Add(int64(sp.end - sp.start))
		}
		s.mFramesOut.Add(1)
		dst = appendAckFrame(dst, a)
		s.recordPublishSpan(sp, begin, errStr)
	}
	return dst, countScratch
}

// recordPublishSpan records one traced publish frame into the node's
// span ring; untraced frames (the common case) are free.
func (s *Server) recordPublishSpan(sp frameSpan, begin time.Time, errStr string) {
	if sp.tr.IsZero() {
		return
	}
	s.tracer.Record(trace.Span{
		Trace: sp.tr, Op: "stream.publish", Node: s.node, Shard: -1,
		Start: begin, Duration: time.Since(begin), Err: errStr,
	})
	s.metrics.Counter(metrics.TraceSpans.Name).Inc()
}

func (s *Server) handshake(br *bufio.Reader, bw *bufio.Writer) error {
	var readBuf []byte
	rec, err := s.readFrame(br, &readBuf)
	if err != nil {
		return err
	}
	if rec.Op != durable.OpStreamHello {
		return fmt.Errorf("%w: expected hello, got %v", ErrBadFrame, rec.Op)
	}
	var h hello
	if err := json.Unmarshal(rec.Payload, &h); err != nil {
		return fmt.Errorf("%w: hello: %v", ErrBadFrame, err)
	}
	if h.Proto != ProtoVersion {
		return fmt.Errorf("%w: protocol version %d", ErrBadFrame, h.Proto)
	}
	reply, err := json.Marshal(hello{Proto: ProtoVersion, Node: s.node})
	if err != nil {
		return err
	}
	frame := durable.Record{Op: durable.OpStreamHello, Payload: reply}.AppendEncoded(nil)
	if _, err := bw.Write(frame); err != nil {
		return err
	}
	return bw.Flush()
}

// readFrame reads exactly one durable frame from br into *buf (grown
// and reused across calls) and decodes it zero-copy: the returned
// record's payload aliases *buf and is only valid until the next call.
func (s *Server) readFrame(br *bufio.Reader, buf *[]byte) (durable.Record, error) {
	return readFrame(br, buf)
}

func readFrame(br *bufio.Reader, buf *[]byte) (durable.Record, error) {
	if cap(*buf) < durable.FrameHeaderLen {
		*buf = make([]byte, durable.FrameHeaderLen, 4096)
	}
	hdr := (*buf)[:durable.FrameHeaderLen]
	if _, err := io.ReadFull(br, hdr); err != nil {
		return durable.Record{}, err
	}
	bodyLen := durable.FrameBodyLen(hdr)
	if bodyLen > durable.MaxRecordLen {
		return durable.Record{}, durable.ErrTooLarge
	}
	total := durable.FrameHeaderLen + bodyLen
	if cap(*buf) < total {
		grown := make([]byte, total)
		copy(grown, hdr)
		*buf = grown
	}
	frame := (*buf)[:total]
	if _, err := io.ReadFull(br, frame[durable.FrameHeaderLen:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return durable.Record{}, err
	}
	rec, _, err := durable.DecodeFrame(frame)
	return rec, err
}
