package reef

// Replication glue: how a Centralized deployment feeds a replication
// sender (the tap) and absorbs a peer's stream (ApplyReplicated /
// ApplyReplicatedCut). The deployment stays transport-free — the
// internal/replication manager owns connections and positions; this
// file only bridges durable records to the sharded engines.
//
// The invariant both directions share: a replicated record is applied
// AND journaled on the shard that owns its user (via
// durable.Journal.Ingest, which appends without feeding the tap), so a
// replica's own recovery replays it exactly like a local mutation, and
// it is never re-shipped — two nodes replicating to each other cannot
// loop.

import (
	"encoding/json"
	"fmt"

	"reef/internal/attention"
	"reef/internal/durable"
)

// SetReplicationTap registers fn to observe every locally-originated
// durable record, across all shards, after it is safely in the WAL.
// Within one shard the tap order equals the WAL append order — which
// is all replication needs, because a user's records all live on one
// shard. Records ingested through ApplyReplicated do not reach the
// tap. On a memory-only deployment this is a no-op: there is no WAL,
// so there is nothing to ship.
func (c *Centralized) SetReplicationTap(fn func(durable.Record)) {
	for _, e := range c.shards {
		e.journal.SetTap(fn)
	}
}

// ReplicationEnabled reports whether this deployment journals at all —
// replication ships the WAL, so no WAL means nothing to replicate.
func (c *Centralized) ReplicationEnabled() bool {
	return len(c.shards) > 0 && c.shards[0].journal.Enabled()
}

// ApplyReplicated applies a batch of records received from a peer, in
// order. Each record lands on the shard its user hashes to: click
// batches are split and re-framed per shard, flags broadcast to every
// shard (the flag store is an idempotent OR-set, so the broadcast is
// safe under redelivery), and user-addressed ops dispatch to the
// owning shard's replay hooks. Every landed record is journaled via
// Ingest so it survives this node's own crashes.
func (c *Centralized) ApplyReplicated(recs []durable.Record) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.mu.Unlock()
	for _, rec := range recs {
		if err := c.applyReplicatedRecord(rec); err != nil {
			return fmt.Errorf("reef: applying replicated %v record: %w", rec.Op, err)
		}
	}
	return nil
}

func (c *Centralized) applyReplicatedRecord(rec durable.Record) error {
	n := len(c.shards)
	switch rec.Op {
	case durable.OpClicks:
		var p durable.ClicksPayload
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return err
		}
		groups := make([][]attention.Click, n)
		for _, cl := range p.Clicks {
			i := shardFor(cl.User, n)
			groups[i] = append(groups[i], cl)
		}
		for i, g := range groups {
			if len(g) == 0 {
				continue
			}
			e := c.shards[i]
			g := g
			if err := e.journal.Ingest(
				func() error { e.server.ApplyReplicatedClicks(g); return nil },
				durable.ClicksRecord(g),
			); err != nil {
				return err
			}
		}
		return nil
	case durable.OpFlag:
		var p durable.FlagPayload
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return err
		}
		for _, e := range c.shards {
			rep := e.replay()
			if err := e.journal.Ingest(
				func() error { rep.setFlag(p.Host, p.Flag); return nil },
				rec,
			); err != nil {
				return err
			}
		}
		return nil
	default:
		user, err := replicatedRecordUser(rec)
		if err != nil {
			return err
		}
		e := c.shard(user)
		rep := e.replay()
		return e.journal.Ingest(func() error { return rep.applyRecord(rec) }, rec)
	}
}

// replicatedRecordUser extracts the owning user from a user-addressed
// record payload (every non-clicks, non-flag payload carries "user").
func replicatedRecordUser(rec durable.Record) (string, error) {
	var p struct {
		User string `json:"user"`
	}
	if err := json.Unmarshal(rec.Payload, &p); err != nil {
		return "", err
	}
	if p.User == "" {
		return "", fmt.Errorf("record has no user")
	}
	return p.User, nil
}

// CaptureReplicationState cuts a consistent-enough full state for a
// replica that is too far behind to catch up from the record stream:
// each shard's state is captured under its journal lock (a per-shard
// consistent cut), then merged. Shards cut independently — the merge
// is not a single global point in the operation stream, which is the
// same consistency a multi-shard snapshot already has.
func (c *Centralized) CaptureReplicationState() (*durable.State, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.mu.Unlock()
	out := &durable.State{Version: 1}
	for _, e := range c.shards {
		st, err := e.journal.Capture()
		if err != nil {
			return nil, err
		}
		if st == nil { // journal disabled: nothing durable to cut
			continue
		}
		out.Clicks = append(out.Clicks, st.Clicks...)
		out.Subscriptions = append(out.Subscriptions, st.Subscriptions...)
		out.Pending = append(out.Pending, st.Pending...)
		out.Cursors = append(out.Cursors, st.Cursors...)
		if st.PendingSeq > out.PendingSeq {
			out.PendingSeq = st.PendingSeq
		}
		for h, f := range st.Flags {
			if out.Flags == nil {
				out.Flags = make(map[string]int)
			}
			out.Flags[h] |= f
		}
	}
	return out, nil
}

// ApplyReplicatedCut absorbs a peer's snapshot cut: the state is
// replayed through the same routed hooks recovery uses (clicks split
// per shard, flags broadcast, users dispatched by hash), then every
// shard snapshots so the cut is durable here before the record stream
// resumes. The cut must land on a node that holds no conflicting state
// for the cut's users — the replication manager only requests one on a
// fresh or restarting replica.
func (c *Centralized) ApplyReplicatedCut(st *durable.State) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.mu.Unlock()
	if st == nil {
		return nil
	}
	n := len(c.shards)
	dr := c.routedReplay()
	// routedReplay's clicks hook is the live ReceiveClicks, which would
	// journal (and tap — re-shipping the cut) on an armed journal.
	// Replace it with the bare mutation: the per-shard Snapshot below
	// makes the whole cut durable in one piece instead.
	dr.applyClicks = func(batch []attention.Click) error {
		groups := make([][]attention.Click, n)
		for _, cl := range batch {
			i := shardFor(cl.User, n)
			groups[i] = append(groups[i], cl)
		}
		for i, g := range groups {
			if len(g) > 0 {
				c.shards[i].server.ApplyReplicatedClicks(g)
			}
		}
		return nil
	}
	if err := dr.applyState(st); err != nil {
		return err
	}
	for _, e := range c.shards {
		if err := e.journal.Snapshot(); err != nil {
			return err
		}
	}
	return nil
}
