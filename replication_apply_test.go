package reef_test

import (
	"context"
	"sync"
	"testing"

	"reef"
	"reef/internal/durable"
	"reef/internal/durable/durabletest"
)

// TestReplicationApplyRoundTrip is the reef-layer half of replication:
// every record tapped from a primary's WAL, applied on a second
// deployment through ApplyReplicated, reproduces the golden state
// byte-exactly — including pending-recommendation IDs and durable
// counters — even when the replica runs a different shard count (the
// stream is re-framed per shard on ingest).
func TestReplicationApplyRoundTrip(t *testing.T) {
	ctx := context.Background()
	web := testWeb(71)

	var mu sync.Mutex
	var stream []durable.Record
	primary, err := reef.NewCentralized(
		reef.WithFetcher(web),
		reef.WithDataDir(t.TempDir()),
		reef.WithShards(2),
		reef.WithSnapshotEvery(-1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	primary.SetReplicationTap(func(r durable.Record) {
		mu.Lock()
		stream = append(stream, r)
		mu.Unlock()
	})

	replica, err := reef.NewCentralized(
		reef.WithFetcher(web),
		reef.WithDataDir(t.TempDir()),
		reef.WithShards(3),
		reef.WithSnapshotEvery(-1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()

	users := driveCentralized(t, ctx, primary, web)
	// Capture drains fresh recommendations into the pending ledger —
	// journaled, so the drain itself lands in the stream before we ship.
	want, err := durabletest.Capture(ctx, primary, users, durabletest.DurableStatKeys)
	if err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	shipped := append([]durable.Record(nil), stream...)
	mu.Unlock()
	if len(shipped) == 0 {
		t.Fatal("tap saw no records from a full drive")
	}
	if err := replica.ApplyReplicated(shipped); err != nil {
		t.Fatal(err)
	}

	got, err := durabletest.Capture(ctx, replica, users, durabletest.DurableStatKeys)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := durabletest.Diff(want, got)
	if err != nil {
		t.Fatal(err)
	}
	if diff != "" {
		t.Fatalf("replicated state differs from primary:\n%s", diff)
	}
}

// TestReplicationSnapshotCut pins the catch-up path for a replica too
// far behind to stream: a consistent cut captured on the primary and
// absorbed through ApplyReplicatedCut reproduces the golden state, and
// the cut is immediately durable on the replica (it survives a crash).
func TestReplicationSnapshotCut(t *testing.T) {
	ctx := context.Background()
	web := testWeb(72)
	primary, err := reef.NewCentralized(
		reef.WithFetcher(web),
		reef.WithDataDir(t.TempDir()),
		reef.WithShards(2),
		reef.WithSnapshotEvery(-1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	users := driveCentralized(t, ctx, primary, web)
	want, err := durabletest.Capture(ctx, primary, users, durabletest.DurableStatKeys)
	if err != nil {
		t.Fatal(err)
	}
	cut, err := primary.CaptureReplicationState()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	open := func() *reef.Centralized {
		rep, err := reef.NewCentralized(
			reef.WithFetcher(web),
			reef.WithDataDir(dir),
			reef.WithSyncPolicy(reef.SyncAlways),
			reef.WithSnapshotEvery(-1),
		)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	replica := open()
	if err := replica.ApplyReplicatedCut(cut); err != nil {
		t.Fatal(err)
	}
	got, err := durabletest.Capture(ctx, replica, users, durabletest.DurableStatKeys)
	if err != nil {
		t.Fatal(err)
	}
	if diff, err := durabletest.Diff(want, got); err != nil || diff != "" {
		t.Fatalf("cut state differs (%v):\n%s", err, diff)
	}

	// Crash and recover: the cut was snapshotted, so it survives.
	if err := durabletest.Crash(replica); err != nil {
		t.Fatal(err)
	}
	replica = open()
	defer replica.Close()
	got, err = durabletest.Capture(ctx, replica, users, durabletest.DurableStatKeys)
	if err != nil {
		t.Fatal(err)
	}
	if diff, err := durabletest.Diff(want, got); err != nil || diff != "" {
		t.Fatalf("cut state lost across replica crash (%v):\n%s", err, diff)
	}
}
