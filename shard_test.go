package reef_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"reef"
	"reef/internal/pubsub"
	"reef/internal/waif"
)

// TestWithShardsValidation pins the WithShards contract: n < 1 is
// rejected with ErrInvalidArgument by both constructors, and an
// injected click store cannot back more than one shard.
func TestWithShardsValidation(t *testing.T) {
	web := testWeb(21)
	for _, n := range []int{0, -1, -100} {
		if _, err := reef.NewCentralized(reef.WithFetcher(web), reef.WithShards(n)); !errors.Is(err, reef.ErrInvalidArgument) {
			t.Errorf("NewCentralized(WithShards(%d)) error = %v, want ErrInvalidArgument", n, err)
		}
		if _, err := reef.NewDistributed(reef.WithFetcher(web), reef.WithShards(n)); !errors.Is(err, reef.ErrInvalidArgument) {
			t.Errorf("NewDistributed(WithShards(%d)) error = %v, want ErrInvalidArgument", n, err)
		}
	}
	if _, err := reef.NewCentralized(reef.WithFetcher(web), reef.WithShards(2), reef.WithStore(nil)); err != nil {
		// WithStore(nil) means "default store": allowed with any shard count.
		t.Errorf("WithShards(2)+WithStore(nil): %v", err)
	}
}

// TestShardedPublishBatchWholeBatchValidation: one invalid event in a
// batch must publish nothing on any shard — the batch converts (and
// fails) before any shard's broker sees it.
func TestShardedPublishBatchWholeBatchValidation(t *testing.T) {
	ctx := context.Background()
	web := testWeb(22)
	dep, err := reef.NewCentralized(reef.WithFetcher(web), reef.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dep.Close() }()

	// Subscribers on several shards, so a partial publish would be visible.
	feeds := feedURLs(web)
	users := []string{"alice", "bob", "carol", "dave", "erin"}
	for _, u := range users {
		if _, err := dep.Subscribe(ctx, u, feeds[0]); err != nil {
			t.Fatal(err)
		}
	}
	item := map[string]string{"type": waif.EventAttrType, "feed": feeds[0], "title": "t", "link": "http://x.test/1"}
	batch := []reef.Event{
		{Attrs: item},
		{Attrs: nil}, // invalid: no attributes
		{Attrs: item},
	}
	if _, err := dep.PublishBatch(ctx, batch); !errors.Is(err, reef.ErrInvalidArgument) {
		t.Fatalf("PublishBatch with invalid event: error = %v, want ErrInvalidArgument", err)
	}
	stats, err := dep.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := stats["broker_published"]; got != 0 {
		t.Errorf("broker_published after rejected batch = %v, want 0 (no shard may see a partial batch)", got)
	}

	// The same batch without the bad event delivers on every shard that
	// hosts a subscriber.
	n, err := dep.PublishBatch(ctx, []reef.Event{{Attrs: item}})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(users) {
		t.Errorf("PublishBatch delivered %d, want %d (one delivery per subscribed user across shards)", n, len(users))
	}
}

// TestShardedRoutingAndAggregation drives user-addressed calls through
// a 4-shard deployment and checks per-user state stays user-visible
// (routing is deterministic), publishes fan out to all shards, and
// Stats/StorageInfo aggregate with per-shard breakdowns.
func TestShardedRoutingAndAggregation(t *testing.T) {
	ctx := context.Background()
	web := testWeb(23)
	dep, err := reef.NewCentralized(reef.WithFetcher(web), reef.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dep.Close() }()
	if got := dep.ShardCount(); got != 4 {
		t.Fatalf("ShardCount = %d, want 4", got)
	}

	feeds := feedURLs(web)
	users := make([]string, 12)
	for i := range users {
		users[i] = fmt.Sprintf("user-%02d", i)
		if _, err := dep.Subscribe(ctx, users[i], feeds[i%2]); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range users {
		subs, err := dep.Subscriptions(ctx, u)
		if err != nil {
			t.Fatal(err)
		}
		if len(subs) != 1 {
			t.Fatalf("user %s sees %d subscriptions, want 1", u, len(subs))
		}
	}
	if err := dep.Unsubscribe(ctx, users[0], feeds[0]); err != nil {
		t.Fatal(err)
	}
	if subs, _ := dep.Subscriptions(ctx, users[0]); len(subs) != 0 {
		t.Fatalf("after unsubscribe, user %s still sees %d subscriptions", users[0], len(subs))
	}

	// A feed-item publish reaches every remaining subscriber of feeds[0],
	// wherever they hash.
	ev := reef.Event{Attrs: map[string]string{
		"type": waif.EventAttrType, "feed": feeds[0], "title": "t", "link": "http://x.test/1",
	}}
	delivered, err := dep.PublishEvent(ctx, ev)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := range users {
		if i%2 == 0 && i != 0 {
			want++
		}
	}
	if delivered != want {
		t.Errorf("PublishEvent delivered %d, want %d", delivered, want)
	}

	stats, err := dep.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := stats["shards"]; got != 4 {
		t.Errorf("stats[shards] = %v, want 4", got)
	}
	if got := stats["users_with_frontends"]; got != float64(len(users)) {
		t.Errorf("users_with_frontends = %v, want %d", got, len(users))
	}
	var perShard float64
	for i := 0; i < 4; i++ {
		perShard += stats[fmt.Sprintf("shard%d_users_with_frontends", i)]
	}
	if perShard != float64(len(users)) {
		t.Errorf("per-shard user breakdown sums to %v, want %d", perShard, len(users))
	}

	info, err := dep.StorageInfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Backend != "memory" || info.ShardCount != 4 || len(info.Shards) != 4 {
		t.Errorf("StorageInfo = %+v, want memory backend with 4 shard entries", info)
	}
}

// TestShardedFeedPublisherRejected: a single caller-owned feed
// publisher cannot fan in from several shards' proxies without
// duplicating items, so the combination is refused up front.
func TestShardedFeedPublisherRejected(t *testing.T) {
	web := testWeb(24)
	if _, err := reef.NewCentralized(reef.WithFetcher(web), reef.WithShards(2),
		reef.WithFeedPublisher(nopPublisher{})); !errors.Is(err, reef.ErrInvalidArgument) {
		t.Errorf("Centralized WithFeedPublisher+WithShards(2): error = %v, want ErrInvalidArgument", err)
	}
	if _, err := reef.NewDistributed(reef.WithFetcher(web), reef.WithShards(2),
		reef.WithFeedPublisher(nopPublisher{})); !errors.Is(err, reef.ErrInvalidArgument) {
		t.Errorf("Distributed WithFeedPublisher+WithShards(2): error = %v, want ErrInvalidArgument", err)
	}
	dep, err := reef.NewCentralized(reef.WithFetcher(web), reef.WithShards(1),
		reef.WithFeedPublisher(nopPublisher{}))
	if err != nil {
		t.Fatalf("single shard with feed publisher must stay allowed: %v", err)
	}
	_ = dep.Close()
}

type nopPublisher struct{}

func (nopPublisher) Publish(ctx context.Context, ev pubsub.Event) error { return nil }
