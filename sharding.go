package reef

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"reef/internal/durable"
	"reef/internal/pubsub"
	"reef/internal/recommend"
	"reef/internal/routing"
)

// shardFor maps a user identity to a shard index with the shared
// FNV-1a placement hash (internal/routing, also the cluster router's
// user→node scheme). The hash is part of the on-disk contract: a
// user's journal records live in shard-<shardFor(user)>/, so it must
// stay stable across releases (changing it requires the same migration
// path as changing the shard count).
func shardFor(user string, n int) int {
	return routing.UserSlot(user, n)
}

// resolveShards validates an explicit WithShards setting; unset returns
// 0, meaning "adopt the data directory's count, default 1" (resolved in
// planShards). Leaving the option off must never re-shard an existing
// directory.
func resolveShards(cfg config) (int, error) {
	if !cfg.shardsSet {
		return 0, nil
	}
	if cfg.shards < 1 {
		return 0, fmt.Errorf("%w: WithShards(%d): shard count must be at least 1", ErrInvalidArgument, cfg.shards)
	}
	return cfg.shards, nil
}

// fanOut runs fn for every shard concurrently — shard 0 on the calling
// goroutine, the rest on their own — and returns the per-shard results.
// With one shard it is a direct call, so the single-shard fast path pays
// no goroutine or slice cost.
func fanOut[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	if n == 1 {
		v, err := fn(0)
		return []T{v}, err
	}
	out := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = fn(i)
		}(i)
	}
	out[0], errs[0] = fn(0)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// routedReplay builds migration-replay hooks that dispatch each
// recovered user-addressed operation to the shard its user now hashes
// to, given every shard's own replay hooks. Deployment-specific ops
// (clicks, flags) stay unset for the caller to layer on.
func routedReplay(reps []durableReplay) durableReplay {
	n := len(reps)
	at := func(user string) durableReplay { return reps[shardFor(user, n)] }
	return durableReplay{
		applySub: func(rec recommend.Recommendation) error { return at(rec.User).applySub(rec) },
		restorePending: func(user, id string, seq int64, rec recommend.Recommendation) {
			at(user).restorePending(user, id, seq, rec)
		},
		setPendingSeq: func(seq int64) {
			for i := range reps {
				reps[i].setPendingSeq(seq)
			}
		},
		takePending: func(user, id string) (recommend.Recommendation, bool) {
			return at(user).takePending(user, id)
		},
		acceptRec: func(user string, rec recommend.Recommendation) error {
			return at(user).acceptRec(user, rec)
		},
		rejectFeedback: func(user, feedURL string, at2 time.Time) {
			at(user).rejectFeedback(user, feedURL, at2)
		},
		registerDelivery: func(user, id string, ds durable.DeliveryState) {
			at(user).registerDelivery(user, id, ds)
		},
		removeDelivery: func(user, id string) { at(user).removeDelivery(user, id) },
		ackCursor:      func(user, id string, seq int64) { at(user).ackCursor(user, id, seq) },
	}
}

// sumFanOut fans a counting operation out to every shard and totals
// the per-shard results (publish delivery counts).
func sumFanOut(n int, fn func(i int) (int, error)) (int, error) {
	counts, err := fanOut(n, fn)
	total := 0
	for _, c := range counts {
		total += c
	}
	return total, err
}

// mergeStats merges per-shard stat snapshots with the shared rules
// (internal/routing.Merge): counters sum, ".max" takes the maximum,
// ".mean" becomes the ".count"-weighted mean.
func mergeStats(shards []Stats) Stats {
	return routing.Merge(shards)
}

// stampEvents assigns IDs and timestamps before a fan-out, so every
// shard sees the same event identity and no shard mutates the shared
// batch slice concurrently.
func stampEvents(evs []pubsub.Event, now func() time.Time) {
	for i := range evs {
		if evs[i].ID == 0 {
			evs[i].ID = pubsub.NextEventID()
		}
		if evs[i].Published.IsZero() {
			evs[i].Published = now()
		}
	}
}

// mergeStorageInfo aggregates per-shard backend info into the public
// form: counters sum, Generation is the highest shard generation,
// TornTail ORs, and the per-shard breakdown rides along in Shards when
// there is more than one.
func mergeStorageInfo(dataDir string, infos []durable.Info) StorageInfo {
	if len(infos) == 1 {
		out := toStorageInfo(infos[0])
		out.ShardCount = 1
		return out
	}
	agg := StorageInfo{
		Backend:    infos[0].Kind,
		Dir:        dataDir,
		Sync:       infos[0].Sync,
		ShardCount: len(infos),
		Shards:     make([]StorageInfo, 0, len(infos)),
	}
	for _, in := range infos {
		si := toStorageInfo(in)
		agg.Shards = append(agg.Shards, si)
		agg.WALRecords += si.WALRecords
		agg.WALBytes += si.WALBytes
		agg.Snapshots += si.Snapshots
		agg.RecoveredRecords += si.RecoveredRecords
		if si.Generation > agg.Generation {
			agg.Generation = si.Generation
		}
		if si.TornTail {
			agg.TornTail = true
		}
		if si.LastSnapshot.After(agg.LastSnapshot) {
			agg.LastSnapshot = si.LastSnapshot
		}
	}
	return agg
}

// --- on-disk layout -----------------------------------------------------
//
// A single-shard data directory keeps the layout every release so far
// has written: wal-<gen>.log and snap-<gen>.json at the root. A sharded
// directory nests one such journal per shard:
//
//	<dataDir>/shards.json        {"version":1,"shards":N}
//	<dataDir>/shard-0/wal-....log
//	<dataDir>/shard-0/snap-....json
//	<dataDir>/shard-1/...
//
// shards.json exists only on sharded directories, so a legacy (or
// shards=1) directory is recognized by its root journal files alone and
// an old binary can still open a shards=1 directory byte-for-byte.

// shardMetaFile pins a sharded directory's shard count.
const shardMetaFile = "shards.json"

type shardMeta struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

// shardDirs names the per-shard journal directories for count n: the
// root itself for 1, shard-<i> subdirectories otherwise.
func shardDirs(dataDir string, n int) []string {
	if n == 1 {
		return []string{dataDir}
	}
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = filepath.Join(dataDir, "shard-"+strconv.Itoa(i))
	}
	return dirs
}

// hasJournalFiles reports whether dir holds root-level WAL or snapshot
// files (the single-shard layout).
func hasJournalFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() &&
			(strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log") ||
				strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".json")) {
			return true
		}
	}
	return false
}

// listShardDirs returns the shard-<i> subdirectories present under
// dataDir and the highest index + 1 (0 when there are none).
func listShardDirs(dataDir string) (dirs []string, count int) {
	entries, err := os.ReadDir(dataDir)
	if err != nil {
		return nil, 0
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		rest, ok := strings.CutPrefix(e.Name(), "shard-")
		if !ok {
			continue
		}
		i, err := strconv.Atoi(rest)
		if err != nil || i < 0 {
			continue
		}
		dirs = append(dirs, filepath.Join(dataDir, e.Name()))
		if i+1 > count {
			count = i + 1
		}
	}
	return dirs, count
}

// detectShardCount reads the directory's current layout: the meta
// file's count when present, 1 when root journal files exist (legacy
// single-shard layout — authoritative even when stale shard dirs from
// an interrupted migration linger), the shard-dir count otherwise, and
// 0 for a fresh or empty directory.
func detectShardCount(dataDir string) (int, error) {
	data, err := os.ReadFile(filepath.Join(dataDir, shardMetaFile))
	if err == nil {
		var m shardMeta
		if jerr := json.Unmarshal(data, &m); jerr != nil || m.Shards < 1 {
			return 0, fmt.Errorf("reef: corrupt %s in %s", shardMetaFile, dataDir)
		}
		return m.Shards, nil
	}
	if !os.IsNotExist(err) {
		return 0, fmt.Errorf("reef: reading %s: %w", shardMetaFile, err)
	}
	if hasJournalFiles(dataDir) {
		return 1, nil
	}
	_, count := listShardDirs(dataDir)
	return count, nil
}

// shardPlan is the resolved layout decision for one open.
type shardPlan struct {
	n    int
	dirs []string // new-layout journal dirs (nil without a data dir)
	// migrate is set when the directory holds oldN shards' worth of
	// data that must be replayed into the n-shard layout.
	migrate bool
	oldN    int
	oldDirs []string
}

// planShards decides how to open dataDir with n shards (0 = WithShards
// unset: adopt the directory's existing count, default 1 — a restart
// without the option never migrates). Re-sharding is supported across
// the single-shard boundary in both directions (the legacy upgrade 1→n
// and the downgrade n→1); between two sharded counts it is refused
// with a clear error, because both layouts would claim the same
// shard-<i> directories.
func planShards(dataDir string, n int) (shardPlan, error) {
	if dataDir == "" {
		if n == 0 {
			n = 1
		}
		return shardPlan{n: n}, nil
	}
	plan := shardPlan{}
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return plan, fmt.Errorf("reef: creating data dir: %w", err)
	}
	cur, err := detectShardCount(dataDir)
	if err != nil {
		return plan, err
	}
	if n == 0 {
		n = cur
		if n == 0 {
			n = 1
		}
	}
	plan.n = n
	plan.dirs = shardDirs(dataDir, n)
	if cur == 0 {
		// Publish the meta file BEFORE any shard journal is created: if
		// the first open dies mid-way, the partially created shard-<i>/
		// dirs must not masquerade as the directory's real count (a retry
		// would otherwise adopt or refuse the wrong number).
		if n > 1 {
			if err := writeShardMeta(dataDir, n); err != nil {
				return plan, err
			}
		}
		return plan, nil
	}
	if cur == n {
		return plan, nil
	}
	if cur != 1 && n != 1 {
		return plan, fmt.Errorf("%w: data dir %s is laid out for %d shards; reopen it with WithShards(%d) or re-shard through a single-shard step",
			ErrInvalidArgument, dataDir, cur, cur)
	}
	plan.migrate = true
	plan.oldN = cur
	plan.oldDirs = shardDirs(dataDir, cur)
	// Wipe any partial new-layout output of an interrupted earlier
	// migration: until the meta flip below, the old layout stays the
	// single source of truth, so this is cleanup, not data loss.
	if err := wipeLayout(dataDir, n); err != nil {
		return plan, err
	}
	return plan, nil
}

// wipeLayout removes layout-n's files under dataDir: every shard-<i>
// directory for a sharded layout, the root journal files for the
// single-shard one.
func wipeLayout(dataDir string, n int) error {
	if n == 1 {
		entries, err := os.ReadDir(dataDir)
		if err != nil {
			return fmt.Errorf("reef: reading data dir: %w", err)
		}
		for _, e := range entries {
			name := e.Name()
			// Prefix AND suffix, matching hasJournalFiles: a stray
			// wal-0.log.bak is not layout evidence, so it is not ours to
			// delete either.
			if e.Type().IsRegular() &&
				(strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log") ||
					strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".json")) {
				if err := os.Remove(filepath.Join(dataDir, name)); err != nil {
					return fmt.Errorf("reef: clearing stale %s: %w", name, err)
				}
			}
		}
		return nil
	}
	dirs, _ := listShardDirs(dataDir)
	for _, d := range dirs {
		if err := os.RemoveAll(d); err != nil {
			return fmt.Errorf("reef: clearing stale %s: %w", d, err)
		}
	}
	return nil
}

// writeShardMeta atomically publishes the directory's shard count.
func writeShardMeta(dataDir string, n int) error {
	data, err := json.Marshal(shardMeta{Version: 1, Shards: n})
	if err != nil {
		return err
	}
	tmp := filepath.Join(dataDir, shardMetaFile+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("reef: writing %s: %w", shardMetaFile, err)
	}
	if err := os.Rename(tmp, filepath.Join(dataDir, shardMetaFile)); err != nil {
		return fmt.Errorf("reef: publishing %s: %w", shardMetaFile, err)
	}
	return nil
}

// ensureShardLayout finalizes a non-migrating open: a sharded directory
// gets its meta file (fresh dirs), and stale files of the other layout
// left by a crash between a migration's meta flip and its cleanup are
// swept. Single-shard directories stay byte-compatible with the legacy
// layout: no meta file, nothing extra.
func ensureShardLayout(dataDir string, n int) error {
	if dataDir == "" {
		return nil
	}
	if n == 1 {
		_ = os.Remove(filepath.Join(dataDir, shardMetaFile))
		return wipeLayout(dataDir, 2) // sweep stale shard-* dirs, if any
	}
	if err := writeShardMeta(dataDir, n); err != nil {
		return err
	}
	return wipeLayout(dataDir, 1) // sweep stale root journal files, if any
}

// loadShardSource opens one old-layout journal directory just long
// enough to read its recovery state (snapshot baseline plus intact WAL
// tail, torn tail truncated exactly as normal recovery would).
func loadShardSource(dir string) (*durable.State, []durable.Record, error) {
	b, err := durable.OpenFile(dir, durable.FileOptions{Sync: durable.SyncNever})
	if err != nil {
		return nil, nil, err
	}
	st, tail, err := b.Load()
	if cerr := b.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, nil, err
	}
	return st, tail, nil
}

// finishMigration publishes the migrated layout: flip the meta file to
// the new shard count (or drop it for the single-shard layout), then
// retire the old layout's files. Every new shard journal must already
// hold a durable snapshot of its slice of the state; a crash before the
// meta flip re-runs the migration from the untouched old layout, a
// crash after it leaves only stale old files, swept at the next open.
func finishMigration(dataDir string, plan shardPlan) error {
	if plan.n == 1 {
		if err := os.Remove(filepath.Join(dataDir, shardMetaFile)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("reef: retiring %s: %w", shardMetaFile, err)
		}
	} else {
		if err := writeShardMeta(dataDir, plan.n); err != nil {
			return err
		}
	}
	return wipeLayout(dataDir, plan.oldN)
}
